package mapper

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Cost weights. Penalties dominate real routing costs so the annealer always
// prefers legalizing the mapping over shortening routes.
const (
	costUnplaced   = 1000.0
	costFailedEdge = 400.0
	costInfeasible = 50.0 // placement-candidate penalty for dt < 1
	costTooFar     = 20.0 // placement-candidate penalty for spatial > dt
)

// debugCostCheck, when set (by tests only — never in production paths),
// asserts after every movement and rollback that the incrementally
// maintained cost tally agrees with a from-scratch recompute.
var debugCostCheck bool

// pairRef links a node to one same-level partner and the label-2 value of
// their dummy edge.
type pairRef struct {
	other int
	want  float64
}

// costTally is the incrementally maintained annealing objective: cost() and
// valid() read it in O(1) instead of rescanning placement and route arrays
// every movement. Every mutation goes through the place/unplace/setRoute/
// clearRoute mutators, which keep it exact (all terms are small integers, so
// the float objective is bit-identical to a full recompute in any order).
type costTally struct {
	unplaced int // nodes with pe < 0
	failed   int // unrouted edges whose endpoints are both placed
	routed   int // edges with a committed route
	hops     int // Σ (len(route) − 1) over routed edges
}

// state is one mapping attempt at a fixed II.
type state struct {
	ar  arch.Arch
	g   *dfg.Graph
	an  *dfg.Analysis
	lbl *labels.Labels
	cfg config
	rng *rand.Rand

	ii       int
	schedLen int
	diameter int

	rg     *rgraph.Graph
	occ    *rgraph.Occupancy
	router *rgraph.Router

	pe     []int   // -1 when unplaced
	time   []int   // valid when placed
	routes [][]int // per edge; nil when unrouted

	order    []int // node IDs in placement order
	orderIdx []int // node ID -> rank in order (precomputed once)
	partners [][]pairRef

	fuTab   []int32 // (cycle*numPE + pe) -> FU resource node, dense FUAt cache
	distTab []int16 // (a*numPE + b) -> spatial distance, dense SpatialDistance cache
	numPE   int
	// opOKTab[kind] mirrors fuTab's layout with AllowsOp(kind) per slot,
	// built lazily on the first candidate scan for that op kind.
	opOKTab [32][]bool

	tally costTally

	// Movement transaction: an undo log over pe/time/routes plus the armed
	// occupancy journal. rollbackTxn restores exactly the entries the
	// movement touched — O(touched), replacing the per-movement deep clone.
	txnActive  bool
	peLog      []peUndo
	routeLog   []routeUndo
	savedTally costTally

	// Scratch reused across movements (the annealer is single-goroutine).
	candBuf     []slot
	topBuf      []slot
	nbBuf       []nbRef
	prtBuf      []prtRef
	victimBuf   []int
	problemBuf  []int
	problemMark []bool
	pendingBuf  []int

	attempted, accepted int     // for σ = max{1, α·T − Acc}
	alpha               float64 // α of Algorithm 1 line 7
	initialPhase        bool    // partial mode: labels only apply here

	faultToken uint64 // per-request fault stream token (the annealer seed)
	faultErr   error  // first injected router fault; aborts the sweep

	// Portfolio hooks (portfolio.go); all zero on single-chain runs.
	preSeeded  bool        // the chain already built the initial placement (greedy seed)
	randomSeed bool        // uniform-random initial placement: labels off during the seed
	shared     *portShared // cross-chain abandonment state; nil outside a portfolio
	chainIdx   int         // this chain's index in the race
}

type peUndo struct {
	v, pe, t int32
}

type routeUndo struct {
	e    int32
	path []int
}

func newState(ar arch.Arch, g *dfg.Graph, an *dfg.Analysis, ii int,
	lbl *labels.Labels, cfg config, alpha float64, rng *rand.Rand) *state {

	st := &state{
		ar: ar, g: g, an: an, lbl: lbl, cfg: cfg, rng: rng, ii: ii, alpha: alpha,
		pe:   make([]int, g.NumNodes()),
		time: make([]int, g.NumNodes()),
	}
	for i := range st.pe {
		st.pe[i] = -1
	}
	st.routes = make([][]int, g.NumEdges())
	st.tally = costTally{unplaced: g.NumNodes()}

	st.diameter = 0
	n := ar.NumPEs()
	st.numPE = n
	for a := 0; a < n; a++ {
		if d := ar.SpatialDistance(0, a); d > st.diameter {
			st.diameter = d
		}
		if d := ar.SpatialDistance(n-1, a); d > st.diameter {
			st.diameter = d
		}
	}
	st.schedLen = an.CriticalPath + 2*ii + st.diameter + 2
	st.rg = ar.BuildRGraph(ii)
	st.occ = rgraph.NewOccupancy(st.rg)
	st.router = rgraph.NewRouter(st.rg, st.schedLen)

	// Dense (cycle, pe) -> FU table: FUAt is a map lookup, far too slow for
	// the candidate scan that runs it (window × PEs) times per placement.
	// Cycle-major so the per-cycle candidate scan walks it sequentially.
	st.fuTab = make([]int32, n*ii)
	for pe := 0; pe < n; pe++ {
		for c := 0; c < ii; c++ {
			st.fuTab[c*n+pe] = int32(st.rg.FUAt(pe, c))
		}
	}
	// Dense pairwise spatial distances: SpatialDistance is an interface call
	// (with coordinate math behind it) and the candidate cost evaluates it
	// for every (candidate, placed neighbor) pair.
	st.distTab = make([]int16, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			st.distTab[a*n+b] = int16(ar.SpatialDistance(a, b))
		}
	}

	// Placement order: label 1 when enabled, ASAP otherwise, with
	// deterministic ID tie-break.
	st.order = make([]int, g.NumNodes())
	for i := range st.order {
		st.order[i] = i
	}
	key := func(v int) float64 {
		if cfg.useOrderLabel {
			return lbl.Order[v]
		}
		return float64(an.ASAP[v])
	}
	sort.SliceStable(st.order, func(i, j int) bool {
		a, b := st.order[i], st.order[j]
		if key(a) != key(b) {
			return key(a) < key(b)
		}
		return a < b
	})
	st.orderIdx = make([]int, g.NumNodes())
	for i, v := range st.order {
		st.orderIdx[v] = i
	}
	st.problemMark = make([]bool, g.NumNodes())

	// Build the partner lists in sorted pair order, not map-iteration order:
	// the per-candidate cost sums partner terms in list order, and float
	// addition is order-sensitive, so ranging over the map directly would
	// make the whole anneal nondeterministic for the label-using engines.
	st.partners = make([][]pairRef, g.NumNodes())
	pairs := make([]labels.Pair, 0, len(lbl.SameLevel))
	for p := range lbl.SameLevel {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		want := lbl.SameLevel[p]
		st.partners[p.A] = append(st.partners[p.A], pairRef{other: p.B, want: want})
		st.partners[p.B] = append(st.partners[p.B], pairRef{other: p.A, want: want})
	}
	return st
}

// fuAt is the dense FUAt: the FU resource node hosting (pe, absolute time t).
func (st *state) fuAt(pe, t int) int {
	return int(st.fuTab[(t%st.ii)*st.numPE+pe])
}

// dist is the dense SpatialDistance.
func (st *state) dist(a, b int) int {
	return int(st.distTab[a*st.numPE+b])
}

// anneal runs the movement loop; it returns success and the movement count.
//
//lisa:hotpath the SA move/route loop is the mapper's entire runtime; BENCH_mapper.json gates allocs per move
func (st *state) anneal(opts Options, start time.Time) (bool, int) {
	st.initialPhase = true
	if !st.preSeeded {
		st.placeAll()
	}
	st.routePending()
	st.initialPhase = false

	cur := st.cost()
	temp := opts.InitTemp
	moves := 0
	for moves < opts.MaxMoves {
		if st.faultErr != nil {
			// An injected router fault makes every further route attempt
			// moot; stop burning the movement budget.
			return false, moves
		}
		if st.valid() {
			return true, moves
		}
		if opts.TimeLimit > 0 && moves%64 == 0 && time.Since(start) > opts.TimeLimit {
			return false, moves
		}
		if st.shared != nil && moves%64 == 0 && st.shared.abandoned(st.chainIdx, st.ii) {
			// Another portfolio chain completed at a strictly lower II (or a
			// lower-index chain proved hop-optimality): this attempt can no
			// longer win the race, so stop spending its budget.
			return false, moves
		}
		st.beginTxn()
		st.movement()
		if debugCostCheck {
			st.assertTally("after movement")
		}
		moves++
		st.attempted++
		next := st.cost()
		accept := next <= cur
		if !accept && temp > 1e-9 {
			accept = st.rng.Float64() < math.Exp((cur-next)/temp)
		}
		if accept {
			cur = next
			st.accepted++
			st.commitTxn()
		} else {
			st.rollbackTxn()
			if debugCostCheck {
				st.assertTally("after rollback")
			}
		}
		if moves%opts.MovesPerTemp == 0 {
			temp *= opts.Cool
		}
	}
	return st.valid(), moves
}

// useLabels reports whether label guidance applies to the current phase.
func (st *state) useLabels() bool {
	if st.randomSeed && st.initialPhase {
		// Random-variant portfolio chain: the initial placement is uniform
		// random (vanilla-SA style) regardless of engine; labels apply from
		// the first movement on.
		return false
	}
	if st.cfg.partial {
		return st.initialPhase
	}
	return true
}

// valid reports whether every node is placed and every edge routed.
func (st *state) valid() bool {
	return st.tally.unplaced == 0 && st.tally.routed == st.g.NumEdges()
}

// cost is the annealing objective, read from the incremental tally.
func (st *state) cost() float64 {
	return costUnplaced*float64(st.tally.unplaced) +
		costFailedEdge*float64(st.tally.failed) +
		float64(st.tally.hops)
}

// costFull recomputes the objective from scratch; it is the reference the
// debug assertion and the incremental-cost tests compare cost() against.
func (st *state) costFull() float64 {
	c := 0.0
	for _, p := range st.pe {
		if p < 0 {
			c += costUnplaced
		}
	}
	for e, r := range st.routes {
		if r == nil {
			ed := st.g.Edges[e]
			if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
				c += costFailedEdge
			}
			continue
		}
		c += float64(len(r) - 1)
	}
	return c
}

// validFull is the reference full-scan validity check.
func (st *state) validFull() bool {
	for _, p := range st.pe {
		if p < 0 {
			return false
		}
	}
	for _, r := range st.routes {
		if r == nil {
			return false
		}
	}
	return true
}

func (st *state) assertTally(when string) {
	if got, want := st.cost(), st.costFull(); got != want {
		panic(fmt.Sprintf("mapper: incremental cost drifted %s: tally %v -> %v, recompute %v",
			when, st.tally, got, want))
	}
	if st.valid() != st.validFull() {
		panic(fmt.Sprintf("mapper: incremental validity drifted %s: tally %v", when, st.tally))
	}
}

// routingCost counts intermediate resources consumed by all routes.
func (st *state) routingCost() int {
	total := 0
	for _, r := range st.routes {
		if n := len(r) - 2; n > 0 {
			total += n
		}
	}
	return total
}

// --- movement transaction -------------------------------------------------
//
// beginTxn arms the undo logs; commitTxn discards them; rollbackTxn replays
// them in reverse, restoring exactly the pe/time/routes entries and
// occupancy cells the movement touched. The deep-clone snapshot (save/
// restore below) survives purely as the reference path for differential
// tests and the snapshot benchmarks.

func (st *state) beginTxn() {
	st.txnActive = true
	st.savedTally = st.tally
	st.peLog = st.peLog[:0]
	st.routeLog = st.routeLog[:0]
	st.occ.BeginJournal()
}

func (st *state) commitTxn() {
	st.txnActive = false
	st.occ.CommitJournal()
}

func (st *state) rollbackTxn() {
	st.txnActive = false
	for i := len(st.routeLog) - 1; i >= 0; i-- {
		u := st.routeLog[i]
		st.routes[u.e] = u.path
	}
	for i := len(st.peLog) - 1; i >= 0; i-- {
		u := st.peLog[i]
		st.pe[u.v] = int(u.pe)
		st.time[u.v] = int(u.t)
	}
	st.tally = st.savedTally
	st.occ.RollbackJournal()
}

// place records v's placement at (pe, t) and updates the cost tally. The
// caller has already occupied the FU via occ.PlaceOp.
func (st *state) place(v, pe, t int) {
	if st.txnActive {
		st.peLog = append(st.peLog, peUndo{v: int32(v), pe: int32(st.pe[v]), t: int32(st.time[v])})
	}
	st.pe[v] = pe
	st.time[v] = t
	st.tally.unplaced--
	st.failedDelta(v, +1)
}

// unplace clears v's placement. The caller releases the FU via occ.RemoveOp.
func (st *state) unplace(v int) {
	if st.txnActive {
		st.peLog = append(st.peLog, peUndo{v: int32(v), pe: int32(st.pe[v]), t: int32(st.time[v])})
	}
	st.failedDelta(v, -1)
	st.pe[v] = -1
	st.tally.unplaced++
}

// failedDelta adjusts the failed-edge count for v's unrouted incident edges
// whose other endpoint is placed — exactly the edges whose "failed" status
// flips when v's own placement status flips. Call with v placed on the side
// of the flip that has v placed (after place, before unplace).
func (st *state) failedDelta(v, d int) {
	for _, e := range st.g.InEdges(v) {
		if st.routes[e] == nil && st.pe[st.g.Edges[e].From] >= 0 {
			st.tally.failed += d
		}
	}
	for _, e := range st.g.OutEdges(v) {
		if st.routes[e] == nil && st.pe[st.g.Edges[e].To] >= 0 {
			st.tally.failed += d
		}
	}
}

// setRoute records e's committed path. Both endpoints are placed (routeEdge's
// invariant), so the edge leaves the failed set.
func (st *state) setRoute(e int, path []int) {
	if st.txnActive {
		st.routeLog = append(st.routeLog, routeUndo{e: int32(e), path: st.routes[e]})
	}
	st.routes[e] = path
	st.tally.routed++
	st.tally.hops += len(path) - 1
	st.tally.failed--
}

// clearRoute removes e's route (the caller has already uncommitted it from
// occupancy). With both endpoints still placed the edge re-enters the failed
// set.
func (st *state) clearRoute(e int) {
	r := st.routes[e]
	if r == nil {
		return
	}
	if st.txnActive {
		st.routeLog = append(st.routeLog, routeUndo{e: int32(e), path: r})
	}
	st.tally.routed--
	st.tally.hops -= len(r) - 1
	ed := st.g.Edges[e]
	if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
		st.tally.failed++
	}
	st.routes[e] = nil
}

// --- reference snapshot (differential tests and benchmarks only) ----------

type snapshot struct {
	occ    *rgraph.Occupancy
	pe     []int
	time   []int
	routes [][]int
	tally  costTally
}

// save deep-clones the mutable state — the pre-undo-log rollback mechanism.
// Production rollback goes through beginTxn/rollbackTxn; the differential
// test asserts both paths restore identical state.
func (st *state) save() snapshot {
	return snapshot{
		occ:    st.occ.Clone(),
		pe:     append([]int(nil), st.pe...),
		time:   append([]int(nil), st.time...),
		routes: append([][]int(nil), st.routes...),
		tally:  st.tally,
	}
}

func (st *state) restore(s snapshot) {
	st.occ = s.occ
	st.pe = s.pe
	st.time = s.time
	st.routes = s.routes
	st.tally = s.tally
}

// fuOf returns the FU resource node of a placed DFG node.
func (st *state) fuOf(v int) int {
	return st.fuAt(st.pe[v], st.time[v])
}

// placeAll performs the initial full placement in schedule order.
func (st *state) placeAll() {
	for _, v := range st.order {
		if st.pe[v] < 0 {
			st.placeNode(v)
		}
	}
}

// unmapNode removes v's op and unroutes every incident edge (Algorithm 1
// line 2's "unmap one or more DFG nodes").
func (st *state) unmapNode(v int) {
	if st.pe[v] < 0 {
		return
	}
	for _, e := range st.g.InEdges(v) {
		st.unroute(e)
	}
	for _, e := range st.g.OutEdges(v) {
		st.unroute(e)
	}
	st.occ.RemoveOp(st.fuOf(v), v)
	st.unplace(v)
}

func (st *state) unroute(e int) {
	if st.routes[e] == nil {
		return
	}
	sig := rgraph.Signal(st.g.Edges[e].From)
	rgraph.Uncommit(st.occ, sig, st.routes[e])
	st.clearRoute(e)
}

// slot is one placement candidate.
type slot struct {
	pe, t int
	cost  float64
}

// timeBounds computes the candidate window for v from its placed neighbors.
func (st *state) timeBounds(v int) (lb, ub int) {
	lb = st.an.ASAP[v]
	ub = st.schedLen - 1
	for _, p := range st.g.Pred(v) {
		if st.pe[p] >= 0 && st.time[p]+1 > lb {
			lb = st.time[p] + 1
		}
	}
	for _, s := range st.g.Succ(v) {
		if st.pe[s] >= 0 && st.time[s]-1 < ub {
			ub = st.time[s] - 1
		}
	}
	if ub < lb {
		ub = st.schedLen - 1 // inconsistent neighbors; edges will fail and anneal away
	}
	// Bound the window so candidate enumeration stays cheap on big arrays.
	if w := lb + st.ii + st.diameter + 2; ub > w {
		ub = w
	}
	return lb, ub
}

// candidates enumerates the free, op-compatible slots for v into a scratch
// buffer reused across movements; the returned slice is valid until the next
// candidates call.
func (st *state) candidates(v int) []slot {
	lb, ub := st.timeBounds(v)
	op := uint8(st.g.Nodes[v].Op)
	allow := st.opAllow(op)
	out := st.candBuf[:0]
	for t := lb; t <= ub; t++ {
		base := (t % st.ii) * st.numPE
		row := st.fuTab[base:][:st.numPE]
		arow := allow[base:][:st.numPE]
		for pe, fu := range row {
			if !arow[pe] {
				continue
			}
			if !st.occ.CanPlaceOp(int(fu)) {
				continue
			}
			out = append(out, slot{pe: pe, t: t})
		}
	}
	st.candBuf = out
	return out
}

// opAllow returns the dense AllowsOp row for one op kind, building it on
// first use. The table is static per state (the resource graph never
// changes), so the per-slot mask test in the candidate scan becomes a bool
// load.
func (st *state) opAllow(op uint8) []bool {
	if tab := st.opOKTab[op]; tab != nil {
		return tab
	}
	tab := make([]bool, len(st.fuTab))
	for i, fu := range st.fuTab {
		tab[i] = st.rg.Nodes[fu].AllowsOp(op)
	}
	st.opOKTab[op] = tab
	return tab
}

// placeNode places v on a candidate slot. With label guidance the candidate
// cost combines labels 2, 3 and 4 (Algorithm 1 line 6) and the winner is
// drawn from a normal distribution over the cost ranking (lines 7-8);
// without guidance the slot is uniform random, as in vanilla SA.
func (st *state) placeNode(v int) {
	cands := st.candidates(v)
	if len(cands) == 0 {
		return // stays unplaced; the cost function punishes it
	}
	var pick slot
	if st.useLabels() && st.cfg.usePlacementLabels {
		st.buildNeighborRefs(v)
		for i := range cands {
			cands[i].cost = st.slotCost(v, cands[i])
		}
		sigma := math.Max(1, st.alphaSigma())
		idx := int(math.Abs(st.rng.NormFloat64()) * sigma)
		if idx >= len(cands) {
			idx = len(cands) - 1
		}
		pick = st.selectRank(cands, idx)
	} else {
		pick = cands[st.rng.Intn(len(cands))]
	}
	fu := st.fuAt(pick.pe, pick.t)
	if !st.occ.PlaceOp(fu, v) {
		return
	}
	st.place(v, pick.pe, pick.t)
}

// alphaSigma evaluates σ = α·T − Acc from Algorithm 1 line 7: a low
// acceptance rate widens the distribution, randomizing PE selection to escape
// an invalid mapping.
func (st *state) alphaSigma() float64 {
	return st.alpha*float64(st.attempted) - float64(st.accepted)
}

// selectRank returns the element that would sit at index k if cands were
// fully sorted by (cost, t, pe). That key is a total order — no two
// candidates share (pe, t) — so the answer is unique and independent of any
// sort algorithm. k is drawn from |N(0, σ)| and is almost always tiny, so a
// single partial-selection pass beats sorting the whole candidate list; the
// full sort remains as the fallback for the rare large k.
func (st *state) selectRank(cands []slot, k int) slot {
	if k >= len(cands) {
		k = len(cands) - 1
	}
	if k > 16 {
		slices.SortFunc(cands, func(a, b slot) int {
			switch {
			case a.cost < b.cost:
				return -1
			case a.cost > b.cost:
				return 1
			case a.t != b.t:
				return a.t - b.t
			default:
				return a.pe - b.pe
			}
		})
		return cands[k]
	}
	top := st.topBuf[:0] // k+1 smallest so far, sorted ascending
	for _, c := range cands {
		if len(top) == k+1 && !slotLess(c, top[k]) {
			continue
		}
		if len(top) < k+1 {
			top = append(top, c)
		} else {
			top[k] = c
		}
		for j := len(top) - 1; j > 0 && slotLess(top[j], top[j-1]); j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	st.topBuf = top
	return top[len(top)-1]
}

func slotLess(a, b slot) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.t != b.t {
		return a.t < b.t
	}
	return a.pe < b.pe
}

// nbRef is one placed edge-neighbor of the node being placed, flattened so
// the per-candidate cost loop touches no graph structure.
type nbRef struct {
	pe, time          int
	temporal, spatial float64
	out               bool // edge direction v -> other
}

// prtRef is one placed same-level partner.
type prtRef struct {
	pe   int
	want float64
}

// buildNeighborRefs flattens v's placed in-edge neighbors, out-edge
// neighbors and partners (in that order — float addition is order-sensitive
// and slotCost must sum exactly as the edge-list walk did) into scratch
// buffers consumed by slotCost.
func (st *state) buildNeighborRefs(v int) {
	nbs := st.nbBuf[:0]
	for _, e := range st.g.InEdges(v) {
		u := st.g.Edges[e].From
		if st.pe[u] < 0 {
			continue
		}
		nbs = append(nbs, nbRef{
			pe: st.pe[u], time: st.time[u],
			temporal: st.lbl.Temporal[e], spatial: st.lbl.Spatial[e],
		})
	}
	for _, e := range st.g.OutEdges(v) {
		w := st.g.Edges[e].To
		if st.pe[w] < 0 {
			continue
		}
		nbs = append(nbs, nbRef{
			pe: st.pe[w], time: st.time[w],
			temporal: st.lbl.Temporal[e], spatial: st.lbl.Spatial[e],
			out: true,
		})
	}
	st.nbBuf = nbs
	prts := st.prtBuf[:0]
	for _, pr := range st.partners[v] {
		if st.pe[pr.other] < 0 {
			continue
		}
		prts = append(prts, prtRef{pe: st.pe[pr.other], want: pr.want})
	}
	st.prtBuf = prts
}

// slotCost is the label-aware placement cost: the sum of differences between
// the distances a candidate implies and the distances the labels expect.
// It reads the neighbor buffers prepared by buildNeighborRefs for v.
func (st *state) slotCost(v int, s slot) float64 {
	c := 0.0
	drow := st.distTab[s.pe*st.numPE:][:st.numPE]
	for i := range st.nbBuf {
		nb := &st.nbBuf[i]
		var dt int
		if nb.out {
			dt = nb.time - s.t
		} else {
			dt = s.t - nb.time
		}
		sd := int(drow[nb.pe])
		if dt < 1 {
			c += costInfeasible
		} else {
			c += math.Abs(float64(dt) - nb.temporal)
			if sd > dt {
				c += costTooFar
			}
		}
		c += math.Abs(float64(sd) - nb.spatial)
	}
	for i := range st.prtBuf {
		c += math.Abs(float64(drow[st.prtBuf[i].pe]) - st.prtBuf[i].want)
	}
	if len(st.nbBuf) == 0 {
		// Anchor isolated placements near the schedule time label 1 expects.
		c += 0.3 * math.Abs(float64(s.t)-st.lbl.Order[v])
	}
	return c
}

// routePending routes every edge whose endpoints are placed, in routing
// priority order (Algorithm 1 lines 9-11: highest temporal-mapping-distance
// first) when enabled.
func (st *state) routePending() {
	pending := st.pendingBuf[:0]
	for e := range st.routes {
		if st.routes[e] != nil {
			continue
		}
		ed := st.g.Edges[e]
		if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
			pending = append(pending, e)
		}
	}
	st.pendingBuf = pending
	if st.cfg.useRoutingPriority && st.useLabels() {
		// Stable insertion sort by descending label-4 value: identical order
		// to sort.SliceStable, with no per-movement closure allocation.
		for i := 1; i < len(pending); i++ {
			for j := i; j > 0 && st.lbl.Temporal[pending[j]] > st.lbl.Temporal[pending[j-1]]; j-- {
				pending[j], pending[j-1] = pending[j-1], pending[j]
			}
		}
	}
	for _, e := range pending {
		st.routeEdge(e)
	}
}

// routeEdge routes one edge with the 0-1 BFS router (Algorithm 1 line 11);
// the hop count is fixed by the endpoints' schedule times.
func (st *state) routeEdge(e int) bool {
	// Fault site router.dijkstra: an injected error fails the route and
	// aborts the sweep (Map surfaces st.faultErr), so the engine ladder can
	// substitute a fallback; disabled, this is one atomic load.
	if err := fault.Inject(fault.RouterDijkstra, st.faultToken); err != nil {
		if st.faultErr == nil {
			st.faultErr = err
		}
		return false
	}
	ed := st.g.Edges[e]
	hops := st.time[ed.To] - st.time[ed.From]
	if hops < 1 {
		return false
	}
	sig := rgraph.Signal(ed.From)
	path, _, ok := st.router.Route(st.occ, sig, st.fuOf(ed.From), st.fuOf(ed.To), hops)
	if !ok {
		return false
	}
	rgraph.Commit(st.occ, sig, path)
	st.setRoute(e, path)
	return true
}

// movement is one unmap/re-place/re-route step.
func (st *state) movement() {
	victims := st.pickVictims()
	for _, v := range victims {
		st.unmapNode(v)
	}
	st.sortByPlacementOrder(victims)
	for _, v := range victims {
		if st.pe[v] < 0 {
			st.placeNode(v)
		}
	}
	st.routePending()
}

// sortByPlacementOrder orders victims by their precomputed rank in the
// global schedule order (orderIdx, built once in newState — previously a
// map[int]int rebuilt on every movement). Ranks are distinct, so insertion
// sort yields the unique order.
func (st *state) sortByPlacementOrder(victims []int) {
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && st.orderIdx[victims[j]] < st.orderIdx[victims[j-1]]; j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
}

// pickVictims chooses the nodes to unmap: problem nodes (unplaced, or
// endpoints of failed/infeasible edges) first, plus an occasional random
// placed node to shake the mapping out of local minima. The pool is
// collected via a reusable mark array and read out in ascending node ID —
// the same sorted order the previous map+sort built, without the per-move
// allocations.
func (st *state) pickVictims() []int {
	mark := st.problemMark
	for v, p := range st.pe {
		if p < 0 {
			mark[v] = true
		}
	}
	for e, r := range st.routes {
		if r != nil {
			continue
		}
		ed := st.g.Edges[e]
		if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
			mark[ed.From] = true
			mark[ed.To] = true
		}
	}
	pool := st.problemBuf[:0]
	for v := range mark {
		if mark[v] {
			pool = append(pool, v)
			mark[v] = false
		}
	}
	st.problemBuf = pool

	victims := st.victimBuf[:0]
	if len(pool) > 0 {
		// One or two problem nodes.
		victims = append(victims, pool[st.rng.Intn(len(pool))])
		if len(pool) > 1 && st.rng.Float64() < 0.5 {
			w := pool[st.rng.Intn(len(pool))]
			if w != victims[0] {
				victims = append(victims, w)
			}
		}
	}
	// Occasionally also displace a random placed node to free resources.
	if len(victims) == 0 || st.rng.Float64() < 0.35 {
		v := st.rng.Intn(st.g.NumNodes())
		dup := false
		for _, w := range victims {
			if w == v {
				dup = true
			}
		}
		if !dup && st.pe[v] >= 0 {
			victims = append(victims, v)
		}
	}
	st.victimBuf = victims
	return victims
}
