package rgraph

import "container/heap"

// routeDijkstra is the original container/heap Dijkstra router, kept as the
// reference implementation for the 0-1 BFS in Route: the differential tests
// assert cost-for-cost agreement on random instances, and the route
// benchmarks quantify the win (no log factor, no interface{} boxing per
// push). It shares the router's dist/stamp/prev scratch — do not interleave
// with Route within one logical query.
//
// At equal cost the two implementations may legitimately pick different
// paths: the heap orders states by cost only, so its tie-break is the
// incidental sift order, while the deque's is the documented
// adjacency-order/FIFO rule.
func (r *Router) routeDijkstra(occ *Occupancy, sig Signal, src, dst, hops int) (path []int, cost int, ok bool) {
	if hops < 1 || hops > r.MaxHops {
		return nil, 0, false
	}
	r.epoch++
	w := r.w
	start := int32(src * w)
	r.dist[start] = 0
	r.stamp[start] = r.epoch
	r.prev[start] = -1
	r.pq = r.pq[:0]
	r.pq = append(r.pq, routeItem{state: start, cost: 0})

	goal := int32(dst*w + hops)
	for len(r.pq) > 0 {
		it := heap.Pop(&r.pq).(routeItem)
		if r.stamp[it.state] == r.epoch && r.dist[it.state] < it.cost {
			continue // stale entry
		}
		if it.state == goal {
			return r.buildPath(goal, hops), int(it.cost), true
		}
		node := int(it.state) / w
		done := int(it.state) % w
		if done >= hops {
			continue
		}
		for _, nb := range r.g.Out(node) {
			next := int(nb)
			nn := &r.g.Nodes[next]
			isDst := next == dst && done+1 == hops
			if !isDst {
				if !nn.RouteOK || !occ.CanEnter(next, sig) {
					continue
				}
			}
			step := int32(1)
			if occ.Carries(next, sig) {
				step = 0
			}
			if isDst {
				step = 0 // the consumer op already occupies its FU
			}
			ns := int32(next*w + done + 1)
			nc := it.cost + step
			if r.stamp[ns] == r.epoch && r.dist[ns] <= nc {
				continue
			}
			r.stamp[ns] = r.epoch
			r.dist[ns] = nc
			r.prev[ns] = it.state
			heap.Push(&r.pq, routeItem{state: ns, cost: nc})
		}
	}
	return nil, 0, false
}

type routeItem struct {
	state int32 // node*(MaxHops+1) + hopsDone
	cost  int32
}

type routeHeap []routeItem

func (h routeHeap) Len() int            { return len(h) }
func (h routeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h routeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x interface{}) { *h = append(*h, x.(routeItem)) }
func (h *routeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
