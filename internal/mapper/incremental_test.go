package mapper

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/labels"
)

// buildAnnealState mirrors the anneal prologue on a random kernel: fresh
// state, initial label-guided placement, pending edges routed. The returned
// state is mid-anneal — exactly the population the movement loop mutates.
func buildAnnealState(t testing.TB, gseed, seed int64, cfg config) *state {
	t.Helper()
	ar := arch.NewBaseline4x4()
	g := dfg.Random(rand.New(rand.NewSource(gseed)), dfg.DefaultRandomConfig(), "prop")
	an := dfg.Analyze(g)
	lbl := labels.Initial(an)
	opts := Options{Seed: seed}.withDefaults()
	st := newState(ar, g, an, ar.MinII(g), lbl, cfg, opts.Alpha, rand.New(rand.NewSource(seed)))
	st.initialPhase = true
	st.placeAll()
	st.routePending()
	st.initialPhase = false
	return st
}

// statesEqual compares a live state against a deep-clone snapshot: placement
// arrays, route paths, the cost tally, and the occupancy table (canonical,
// order-insensitive view).
func statesEqual(st *state, snap snapshot) (string, bool) {
	if !reflect.DeepEqual(st.pe, snap.pe) {
		return "pe", false
	}
	if !reflect.DeepEqual(st.time, snap.time) {
		return "time", false
	}
	if !reflect.DeepEqual(st.routes, snap.routes) {
		return "routes", false
	}
	if st.tally != snap.tally {
		return "tally", false
	}
	if !st.occ.Equivalent(snap.occ) {
		return "occupancy", false
	}
	return "", true
}

// TestRollbackMatchesCloneSnapshot is the differential test for the undo-log
// transaction: across random movement sequences, a rolled-back movement must
// leave the state identical to the deep-clone snapshot taken before it — the
// retired per-movement Clone() path, kept exactly for this comparison.
// Accepted movements advance both paths so the sequences stay realistic.
func TestRollbackMatchesCloneSnapshot(t *testing.T) {
	for _, cfg := range []config{
		{}, // vanilla SA
		{useOrderLabel: true, usePlacementLabels: true, useRoutingPriority: true}, // LISA
	} {
		for gseed := int64(1); gseed <= 3; gseed++ {
			name := fmt.Sprintf("labels=%v/graph%d", cfg.usePlacementLabels, gseed)
			t.Run(name, func(t *testing.T) {
				st := buildAnnealState(t, gseed, 42+gseed, cfg)
				coin := rand.New(rand.NewSource(7 * gseed))
				rolledBack := 0
				for move := 0; move < 400; move++ {
					snap := st.save()
					st.beginTxn()
					st.movement()
					st.attempted++
					if coin.Float64() < 0.5 {
						st.accepted++
						st.commitTxn()
						continue
					}
					st.rollbackTxn()
					rolledBack++
					if what, ok := statesEqual(st, snap); !ok {
						t.Fatalf("move %d: rollback diverged from clone snapshot in %s", move, what)
					}
				}
				if rolledBack == 0 {
					t.Fatal("coin never rejected; test exercised nothing")
				}
			})
		}
	}
}

// TestPlacementOrderIndex covers the orderIdx hoisting: the index must be the
// exact inverse of the placement order, and sortByPlacementOrder must produce
// the same sequence as the retired per-movement map[int]int + SliceStable.
func TestPlacementOrderIndex(t *testing.T) {
	st := buildAnnealState(t, 1, 1, config{useOrderLabel: true, usePlacementLabels: true})
	for rank, v := range st.order {
		if st.orderIdx[v] != rank {
			t.Fatalf("orderIdx[%d] = %d, want rank %d", v, st.orderIdx[v], rank)
		}
	}
	// Reference: the old implementation rebuilt this map every movement.
	oldIdx := make(map[int]int, len(st.order))
	for i, v := range st.order {
		oldIdx[v] = i
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		victims := make([]int, 0, n)
		seen := map[int]bool{}
		for len(victims) < n {
			v := rng.Intn(st.g.NumNodes())
			if !seen[v] {
				seen[v] = true
				victims = append(victims, v)
			}
		}
		want := append([]int(nil), victims...)
		sort.SliceStable(want, func(i, j int) bool { return oldIdx[want[i]] < oldIdx[want[j]] })
		st.sortByPlacementOrder(victims)
		if !reflect.DeepEqual(victims, want) {
			t.Fatalf("trial %d: sortByPlacementOrder = %v, want %v", trial, victims, want)
		}
	}
}

// TestIncrementalCostMatchesFullRecompute arms the debug assertion that
// cross-checks the running tally against a from-scratch recompute after every
// movement and every rollback, then drives full Map runs across engines and
// seeds. Any drift panics inside the anneal loop.
func TestIncrementalCostMatchesFullRecompute(t *testing.T) {
	debugCostCheck = true
	defer func() { debugCostCheck = false }()
	ar := arch.NewBaseline4x4()
	for _, alg := range []Algorithm{AlgSA, AlgLISA, AlgPart} {
		for gseed := int64(1); gseed <= 2; gseed++ {
			g := dfg.Random(rand.New(rand.NewSource(gseed)), dfg.DefaultRandomConfig(), "prop")
			for seed := int64(1); seed <= 2; seed++ {
				mustMap(t, ar, g, alg, nil, Options{Seed: seed, MaxMoves: 300})
			}
		}
	}
}

// TestGreedyTallyConsistent checks that the greedy engine's place/unplace
// bookkeeping (which bypasses transactions) keeps the incremental tally in
// sync, since greedyPass's final validity check reads it.
func TestGreedyTallyConsistent(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for gseed := int64(1); gseed <= 3; gseed++ {
		g := dfg.Random(rand.New(rand.NewSource(gseed)), dfg.DefaultRandomConfig(), "prop")
		an := dfg.Analyze(g)
		lbl := labels.Initial(an)
		st := newState(ar, g, an, ar.MinII(g), lbl, config{}, 0.1, nil)
		greedyPass(st, an)
		if got, want := st.cost(), st.costFull(); got != want {
			t.Fatalf("graph %d: greedy tally cost %v, recompute %v", gseed, got, want)
		}
		if st.valid() != st.validFull() {
			t.Fatalf("graph %d: greedy tally validity diverged", gseed)
		}
	}
}
