package gnn

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/tensor"
)

// modelFile is the on-disk JSON schema of a trained model.
type modelFile struct {
	Format int `json:"format"`
	// Sha256 self-verifies the envelope: the hex SHA-256 of the file's own
	// canonical encoding with this field empty. Load recomputes and compares
	// it, so a truncated or torn model file is a clean validation error, not
	// silently loaded garbage. Empty in legacy files, which load unverified.
	Sha256   string                 `json:"sha256,omitempty"`
	ArchName string                 `json:"arch"`
	Weights  map[string]*tensorFile `json:"weights"`

	NodeScale  []float64 `json:"nodeScale"`
	EdgeScale  []float64 `json:"edgeScale"`
	DummyScale []float64 `json:"dummyScale"`
	ASAPScale  float64   `json:"asapScale"`
}

type tensorFile struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

const modelFormat = 1

// namedWeights enumerates every trainable tensor with a stable name.
func (m *Model) namedWeights() map[string]*tensor.Tensor {
	w := map[string]*tensor.Tensor{
		"order.W0": m.Order.W0, "order.Wh": m.Order.Wh, "order.Out": m.Order.Out,
		"same.W1": m.Same.W1, "same.W2": m.Same.W2,
		"spatial.W1": m.Spatial.W1, "spatial.Wn": m.Spatial.Wn,
		"spatial.W2": m.Spatial.W2, "spatial.W3": m.Spatial.W3, "spatial.Wo": m.Spatial.Wo,
		"temporal.W1": m.Temporal.W1, "temporal.W2": m.Temporal.W2,
	}
	for t := 0; t < 4; t++ {
		w[fmt.Sprintf("order.W1.%d", t)] = m.Order.W1[t]
		w[fmt.Sprintf("order.W2.%d", t)] = m.Order.W2[t]
		w[fmt.Sprintf("order.W3.%d", t)] = m.Order.W3[t]
	}
	return w
}

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	f := modelFile{
		Format:   modelFormat,
		ArchName: m.ArchName,
		Weights:  map[string]*tensorFile{},

		NodeScale:  m.NodeScale,
		EdgeScale:  m.EdgeScale,
		DummyScale: m.DummyScale,
		ASAPScale:  m.ASAPScale,
	}
	//lisa:vet-ok maprange builds a map keyed the same way; encoding/json sorts map keys on output
	for name, t := range m.namedWeights() {
		f.Weights[name] = &tensorFile{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
	}
	sum, err := checksum(&f)
	if err != nil {
		return err
	}
	f.Sha256 = sum
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// checksum hashes the canonical encoding of f with its Sha256 field empty.
// json.Marshal is deterministic here — struct field order is fixed, map keys
// are sorted, and float64 values round-trip to identical shortest
// representations — so a decode/re-encode of an untampered file reproduces
// the exact bytes Save hashed.
func checksum(f *modelFile) (string, error) {
	prev := f.Sha256
	f.Sha256 = ""
	payload, err := json.Marshal(f)
	f.Sha256 = prev
	if err != nil {
		return "", fmt.Errorf("gnn: encode model for checksum: %w", err)
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// Load reads a model saved by Save into a freshly initialized Model. Every
// tensor in the file is validated against the seed model — shape, payload
// length, no missing and no unknown weights — and the scale vectors against
// the attribute dimensionality, before any weight is copied: a corrupt or
// foreign model file is rejected whole and leaves seedModel untouched.
func Load(r io.Reader, seedModel *Model) (*Model, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("gnn: decode model: %w", err)
	}
	if f.Format != modelFormat {
		return nil, fmt.Errorf("gnn: unsupported model format %d", f.Format)
	}
	// Envelope checksum first: a file that decoded as JSON can still be torn
	// (a truncated array, a bit-flipped weight). Legacy files carry no
	// checksum and skip straight to structural validation.
	if f.Sha256 != "" {
		sum, err := checksum(&f)
		if err != nil {
			return nil, err
		}
		if sum != f.Sha256 {
			return nil, fmt.Errorf("gnn: model checksum mismatch: file says %s, content hashes to %s", f.Sha256, sum)
		}
	}
	// Validation walks both weight sets in sorted-name order so a file with
	// several problems always reports the same one first: Load's error text
	// is asserted by tests and surfaces in service logs, and map-iteration
	// order would make it flap run to run.
	want := seedModel.namedWeights()
	fileNames := make([]string, 0, len(f.Weights))
	for name := range f.Weights {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		if _, ok := want[name]; !ok {
			return nil, fmt.Errorf("gnn: model file has unknown weight %q", name)
		}
		if f.Weights[name] == nil {
			return nil, fmt.Errorf("gnn: model file weight %q is null", name)
		}
	}
	wantNames := make([]string, 0, len(want))
	for name := range want {
		wantNames = append(wantNames, name)
	}
	sort.Strings(wantNames)
	for _, name := range wantNames {
		t := want[name]
		src, ok := f.Weights[name]
		if !ok {
			return nil, fmt.Errorf("gnn: model file missing weight %q", name)
		}
		if src.Rows != t.Rows || src.Cols != t.Cols {
			return nil, fmt.Errorf("gnn: weight %q shape %dx%d, want %dx%d",
				name, src.Rows, src.Cols, t.Rows, t.Cols)
		}
		if len(src.Data) != t.Rows*t.Cols {
			return nil, fmt.Errorf("gnn: weight %q has %d values, want %d",
				name, len(src.Data), t.Rows*t.Cols)
		}
	}
	for _, scale := range []struct {
		name string
		got  int
		want int
	}{
		{"nodeScale", len(f.NodeScale), attr.NodeAttrDim},
		{"edgeScale", len(f.EdgeScale), attr.EdgeAttrDim},
		{"dummyScale", len(f.DummyScale), attr.DummyAttrDim},
	} {
		// nil means "unscaled" (an untrained model); anything else must
		// match the attribute dimensionality exactly.
		if scale.got != 0 && scale.got != scale.want {
			return nil, fmt.Errorf("gnn: %s has %d columns, want %d", scale.name, scale.got, scale.want)
		}
	}
	// fitScales only ever produces positive finite scales (zeros are forced
	// to 1). A zero, negative or non-finite entry in a file would silently
	// disable or corrupt scaling for that one column — the same
	// mixed-scaling failure mode as a length skew — so reject it whole.
	for _, sv := range []struct {
		name string
		vals []float64
	}{
		{"nodeScale", f.NodeScale}, {"edgeScale", f.EdgeScale}, {"dummyScale", f.DummyScale},
	} {
		for j, v := range sv.vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("gnn: %s[%d] = %v, want a positive finite scale", sv.name, j, v)
			}
		}
	}
	// Zero means "unscaled" (untrained model) and is valid.
	if v := f.ASAPScale; v != 0 && (math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
		return nil, fmt.Errorf("gnn: asapScale = %v, want a positive finite scale", v)
	}

	m := seedModel
	m.ArchName = f.ArchName
	m.NodeScale = f.NodeScale
	m.EdgeScale = f.EdgeScale
	m.DummyScale = f.DummyScale
	m.ASAPScale = f.ASAPScale
	//lisa:vet-ok maprange validation passed: every copy is per-key into the matching tensor, no cross-key effects
	for name, t := range want {
		copy(t.Data, f.Weights[name].Data)
	}
	return m, nil
}
