package mapper

import (
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
)

func TestUtilize(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(1))
	if !res.OK {
		t.Fatal("map failed")
	}
	u, err := Utilize(ar, g, &res)
	if err != nil {
		t.Fatal(err)
	}
	if u.FUCompute <= 0 || u.FUCompute > 1 {
		t.Fatalf("FU compute utilization %v out of range", u.FUCompute)
	}
	// 14 ops on 16*II slots.
	want := float64(g.NumNodes()) / float64(ar.NumPEs()*res.II)
	if u.FUCompute != want {
		t.Errorf("FU compute = %v, want %v", u.FUCompute, want)
	}
	if u.ScheduleLength <= 0 {
		t.Error("schedule length missing")
	}
	if !strings.Contains(u.String(), "II=") {
		t.Error("String() malformed")
	}
	if _, err := Utilize(ar, g, &Result{}); err == nil {
		t.Error("Utilize must reject failed results")
	}
}

func TestScheduleTable(t *testing.T) {
	ar := arch.NewBaseline3x3()
	g := kernels.MustByName("doitgen")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(2))
	if !res.OK {
		t.Fatal("map failed")
	}
	table := ScheduleTable(ar, g, &res)
	// Every node name (possibly truncated) must appear.
	for _, n := range g.Nodes {
		name := n.Name
		if len(name) >= 8 {
			name = name[:7]
		}
		if !strings.Contains(table, name) {
			t.Errorf("schedule table missing node %q:\n%s", n.Name, table)
		}
	}
	if ScheduleTable(ar, g, &Result{}) != "(no mapping)" {
		t.Error("failed-result table wrong")
	}
}

func TestCriticalEdges(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("atax")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(3))
	if !res.OK {
		t.Fatal("map failed")
	}
	ids := CriticalEdges(g, &res)
	if len(ids) != g.NumEdges() {
		t.Fatalf("edge count %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if res.EdgeHops[ids[i-1]] < res.EdgeHops[ids[i]] {
			t.Fatal("edges not sorted by route length")
		}
	}
}

func TestMapOnTorusAndHetero(t *testing.T) {
	// The new variants must be mappable out of the box — portability.
	for _, ar := range []arch.Arch{arch.NewTorus4x4(), arch.NewHetero4x4()} {
		for _, name := range []string{"gemm", "syr2k"} {
			g := kernels.MustByName(name)
			res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(6))
			if !res.OK {
				t.Errorf("%s on %s: mapping failed", name, ar.Name())
				continue
			}
			if err := Verify(ar, g, &res); err != nil {
				t.Errorf("%s on %s: %v", name, ar.Name(), err)
			}
		}
	}
}

func TestHeteroPlacesMulsOnMultiplierPEs(t *testing.T) {
	ar := arch.NewHetero4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(9))
	if !res.OK {
		t.Fatal("map failed")
	}
	for v, n := range g.Nodes {
		if !ar.SupportsOp(res.PE[v], n.Op) {
			t.Fatalf("node %s (op %s) on incompatible PE %d", n.Name, n.Op, res.PE[v])
		}
	}
}
