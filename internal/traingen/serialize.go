package traingen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
)

// The dataset file format stores each sample's DFG plus its labels. The
// attribute set is NOT stored — it is recomputed on load (the Attributes
// Generator is deterministic), which keeps files small and guarantees the
// attributes always match the loaded code version.

type datasetFile struct {
	Format  int          `json:"format"`
	Stats   Stats        `json:"stats"`
	Samples []sampleFile `json:"samples"`
}

type sampleFile struct {
	Graph     json.RawMessage      `json:"graph"`
	Order     []float64            `json:"order"`
	Spatial   []float64            `json:"spatial"`
	Temporal  []float64            `json:"temporal"`
	SameLevel map[string][]float64 `json:"-"` // flattened below
	Pairs     [][2]int             `json:"pairs"`
	PairVals  []float64            `json:"pairValues"`
}

const datasetFormat = 1

// Save writes the dataset as JSON.
func (ds *Dataset) Save(w io.Writer) error {
	out := datasetFile{Format: datasetFormat, Stats: ds.Stats}
	for i := range ds.Samples {
		s := &ds.Samples[i]
		var gbuf jsonBuffer
		if err := s.Set.An.G.WriteJSON(&gbuf); err != nil {
			return err
		}
		sf := sampleFile{
			Graph:    json.RawMessage(gbuf.data),
			Order:    s.Lbl.Order,
			Spatial:  s.Lbl.Spatial,
			Temporal: s.Lbl.Temporal,
		}
		// Emit the pairs in sorted order, not map-iteration order, so two
		// saves of the same dataset are byte-identical.
		pairs := make([]labels.Pair, 0, len(s.Lbl.SameLevel))
		for p := range s.Lbl.SameLevel {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].A != pairs[b].A {
				return pairs[a].A < pairs[b].A
			}
			return pairs[a].B < pairs[b].B
		})
		for _, p := range pairs {
			sf.Pairs = append(sf.Pairs, [2]int{p.A, p.B})
			sf.PairVals = append(sf.PairVals, s.Lbl.SameLevel[p])
		}
		out.Samples = append(out.Samples, sf)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// Load reads a dataset written by Save and regenerates the attribute sets.
func Load(r io.Reader) (*Dataset, error) {
	var in datasetFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("traingen: decode dataset: %w", err)
	}
	if in.Format != datasetFormat {
		return nil, fmt.Errorf("traingen: unsupported dataset format %d", in.Format)
	}
	ds := &Dataset{Stats: in.Stats}
	for i, sf := range in.Samples {
		g, err := dfg.ReadJSON(bytesReader(sf.Graph))
		if err != nil {
			return nil, fmt.Errorf("traingen: sample %d: %w", i, err)
		}
		lbl := labels.NewZero(g)
		if len(sf.Order) != g.NumNodes() ||
			len(sf.Spatial) != g.NumEdges() || len(sf.Temporal) != g.NumEdges() {
			return nil, fmt.Errorf("traingen: sample %d: label shapes do not match graph", i)
		}
		copy(lbl.Order, sf.Order)
		copy(lbl.Spatial, sf.Spatial)
		copy(lbl.Temporal, sf.Temporal)
		if len(sf.Pairs) != len(sf.PairVals) {
			return nil, fmt.Errorf("traingen: sample %d: pair arrays diverge", i)
		}
		for j, p := range sf.Pairs {
			lbl.SameLevel[labels.MakePair(p[0], p[1])] = sf.PairVals[j]
		}
		ds.Samples = append(ds.Samples, gnn.Sample{Set: attr.Generate(g), Lbl: lbl})
	}
	return ds, nil
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// bytesReader adapts a byte slice to io.Reader without importing bytes (kept
// symmetric with jsonBuffer).
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
