// Package cluster is the multi-node routing layer of lisa-serve: a static
// peer list, consistent-hash ownership of mapping keys, and a proxy client
// with deterministic-backoff health gating.
//
// The design leans on the same property that makes the result store safe
// to share: a mapping is a pure function of its canonical cache key, so
// *where* it is computed does not matter — only that it is computed once.
// Consistent hashing assigns every key exactly one owner; non-owners proxy
// to the owner instead of computing, so a fleet of N daemons answers N
// nodes' worth of traffic with one compute per unique request fleet-wide.
// Every node is configured with the same peer list (order-insensitive; the
// ring is built from sorted URLs), so all nodes agree on ownership without
// any coordination protocol, leader, or membership gossip.
//
// Failure handling is availability-first: when the owner of a key is
// unreachable, the receiving node computes locally instead of failing the
// request — determinism makes the locally computed bytes identical to what
// the owner would have served, so the fallback costs duplicate work, never
// wrong answers. The fallback is labeled in response headers and counted
// in /metrics (the body stays byte-identical fleet-wide, which is the
// contract the degradation ladder's body labels would break). A failing
// peer is put in timed backoff — base×2^(failures−1), capped — so a dead
// node costs one probe per backoff window, not one timeout per request;
// the backoff schedule is a pure function of the failure count, keeping
// recovery behavior reproducible.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

// ForwardedHeader marks a proxied request so the owner computes locally
// instead of re-routing — the loop guard for transiently disagreeing
// configurations (e.g. a peer restarted with a different -peers list).
const ForwardedHeader = "X-Lisa-Forwarded"

// ErrPeerDown reports a peer skipped because it is inside its backoff
// window; the caller falls back to local compute without paying a timeout.
var ErrPeerDown = errors.New("cluster: peer in backoff")

// Config describes one node's view of the fleet. Every node must be given
// the same Peers set (any order) for ownership to agree.
type Config struct {
	// Self is this node's own URL exactly as it appears in Peers.
	Self string
	// Peers lists every node of the fleet, including Self.
	Peers []string
	// Replicas is the number of virtual ring points per peer (default 64);
	// more points smooth the key distribution.
	Replicas int
	// RPCTimeout bounds one proxied mapping call (default 150s — above the
	// service's maximum request deadline, so the peer's own deadline
	// handling, not the transport, decides slow requests).
	RPCTimeout time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// BackoffBase and BackoffMax shape the failure backoff
	// base×2^(failures−1), capped at max (defaults 250ms and 8s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Now is the clock (tests inject a fake; the daemon leaves it nil for
	// time.Now).
	Now func() time.Time
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

// point is one virtual ring position.
type point struct {
	hash uint64
	peer int // index into Cluster.peers
}

// peerHealth tracks one remote peer's failure state. failures==0 means
// healthy; otherwise the peer is skipped until retryAt, when the next
// request is allowed through as the probe.
type peerHealth struct {
	failures int
	retryAt  time.Time
}

// Cluster is one node's routing table plus the health-gated proxy client.
type Cluster struct {
	self     string
	peers    []string // sorted; ring and Status order
	ring     []point  // sorted by hash
	client   *http.Client
	probe    *http.Client
	now      func() time.Time
	backoff0 time.Duration
	backoffM time.Duration

	mu     sync.Mutex
	health map[string]*peerHealth // remote peers only
}

// New validates the peer list and builds the ring. It requires Self to be
// one of Peers, URLs to parse, and no duplicates.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: -self is required with -peers")
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{}
	selfSeen := false
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an absolute URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		if p == strings.TrimRight(strings.TrimSpace(cfg.Self), "/") {
			selfSeen = true
		}
		peers = append(peers, p)
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: -self %q is not in the peer list %v", cfg.Self, peers)
	}
	sort.Strings(peers)

	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 64
	}
	c := &Cluster{
		self:     strings.TrimRight(strings.TrimSpace(cfg.Self), "/"),
		peers:    peers,
		now:      cfg.Now,
		backoff0: cfg.BackoffBase,
		backoffM: cfg.BackoffMax,
		health:   make(map[string]*peerHealth),
	}
	if c.now == nil {
		c.now = func() time.Time {
			//lisa:vet-ok wallclock backoff gating only: the clock decides when a down peer is re-probed, never what any mapping result contains
			return time.Now()
		}
	}
	if c.backoff0 <= 0 {
		c.backoff0 = 250 * time.Millisecond
	}
	if c.backoffM <= 0 {
		c.backoffM = 8 * time.Second
	}
	rpcTimeout := cfg.RPCTimeout
	if rpcTimeout <= 0 {
		rpcTimeout = 150 * time.Second
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	c.client = &http.Client{Timeout: rpcTimeout, Transport: cfg.Transport}
	c.probe = &http.Client{Timeout: probeTimeout, Transport: cfg.Transport}

	// Ring points are hashes of "peer|replica" over the *sorted* peer list,
	// so every node — whatever order its -peers flag came in — derives the
	// identical ring and agrees on ownership with no coordination.
	c.ring = make([]point, 0, len(peers)*replicas)
	for pi, p := range peers {
		for r := 0; r < replicas; r++ {
			c.ring = append(c.ring, point{hash: hash64(fmt.Sprintf("%s|%d", p, r)), peer: pi})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool {
		if c.ring[i].hash != c.ring[j].hash {
			return c.ring[i].hash < c.ring[j].hash
		}
		return c.ring[i].peer < c.ring[j].peer // deterministic tie-break on (astronomically unlikely) hash collisions
	})
	return c, nil
}

// hash64 is FNV-1a — stable across processes and Go versions, unlike
// maphash.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s) // hash.Hash writes never fail
	return h.Sum64()
}

// Self returns this node's URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the full sorted peer list (including self).
func (c *Cluster) Peers() []string { return append([]string(nil), c.peers...) }

// Owner returns the peer URL owning key: the first ring point at or after
// the key's hash, wrapping around. Pure function of (peer list, key) —
// every correctly configured node answers identically.
func (c *Cluster) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0
	}
	return c.peers[c.ring[i].peer]
}

// OwnsSelf reports whether this node owns key.
func (c *Cluster) OwnsSelf(key string) bool { return c.Owner(key) == c.self }

// Available reports whether peer may be contacted right now: healthy, or
// its backoff window has expired (the next call doubles as the probe).
func (c *Cluster) Available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	return h == nil || h.failures == 0 || !c.now().Before(h.retryAt)
}

// markFailure records a failed contact and arms the next backoff window:
// base×2^(failures−1), capped. The schedule is a pure function of the
// failure count — no jitter — so recovery timing reproduces in tests and
// chaos runs.
func (c *Cluster) markFailure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	if h == nil {
		h = &peerHealth{}
		c.health[peer] = h
	}
	h.failures++
	d := c.backoff0
	for i := 1; i < h.failures && d < c.backoffM; i++ {
		d *= 2
	}
	if d > c.backoffM {
		d = c.backoffM
	}
	h.retryAt = c.now().Add(d)
}

// markSuccess clears peer's failure state.
func (c *Cluster) markSuccess(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.health, peer)
}

// Response is one proxied HTTP exchange, body fully read.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// Forward proxies body to peer's path (POST, JSON) through the health
// gate: a peer inside its backoff window returns ErrPeerDown immediately;
// a transport failure (or an armed peer.rpc fault) marks the peer down and
// is returned for the caller to fall back on. An HTTP-level error status
// is a *successful* contact — the peer is alive and said so — and never
// marks it down. token scopes fault decisions per request.
func (c *Cluster) Forward(peer, path string, token uint64, body []byte) (*Response, error) {
	if !c.Available(peer) {
		return nil, ErrPeerDown
	}
	if err := fault.Inject(fault.PeerRPC, token); err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	defer func() { _ = resp.Body.Close() }() // fully read below; close cannot lose data
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: reading response: %w", peer, err)
	}
	c.markSuccess(peer)
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// Probe contacts peer's liveness endpoint and updates its health state,
// reporting reachability. Peers inside their backoff window are not
// contacted (reported down) so a dead node costs one timeout per window.
func (c *Cluster) Probe(peer string) bool {
	if peer == c.self {
		return true
	}
	if !c.Available(peer) {
		return false
	}
	//lisa:vet-ok faultsite Probe and Forward share the PeerRPC site on purpose: a peer-RPC fault plan must hit both paths a request can reach that peer through
	if err := fault.Inject(fault.PeerRPC, fault.Token(peer)); err != nil {
		c.markFailure(peer)
		return false
	}
	resp, err := c.probe.Get(peer + "/healthz")
	if err != nil {
		c.markFailure(peer)
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reusable
	_ = resp.Body.Close()                 // read-only response; nothing to recover
	if resp.StatusCode != http.StatusOK {
		c.markFailure(peer)
		return false
	}
	c.markSuccess(peer)
	return true
}

// PeerStatus is one row of Status: the node's current view of a peer.
type PeerStatus struct {
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Healthy  bool   `json:"healthy"`
	Failures int    `json:"failures,omitempty"`
}

// Status snapshots every peer's health, sorted by URL. "Healthy" means
// contactable right now (self always is; a peer in backoff is not).
func (c *Cluster) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		st := PeerStatus{URL: p, Self: p == c.self, Healthy: true}
		if !st.Self {
			c.mu.Lock()
			if h := c.health[p]; h != nil && h.failures > 0 {
				st.Failures = h.failures
				st.Healthy = !c.now().Before(h.retryAt)
			}
			c.mu.Unlock()
		}
		out = append(out, st)
	}
	return out
}
