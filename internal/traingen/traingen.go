// Package traingen implements the paper's GNN training-data generation
// pipeline (§V): generate a set of random unlabelled DFGs, derive labels for
// each by an iterative *partial* label-aware simulated-annealing method
// (labels only seed the initial mapping; later movements are random), select
// label candidates by mapping quality (best II, routing cost within 1.15× of
// the best), and filter DFGs through the metric e = O + σ·N before admitting
// them to the training set.
package traingen

import (
	"math/rand"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/parallel"
)

// Config parameterizes dataset generation.
type Config struct {
	// NumDFGs is how many random DFGs to generate (the paper uses 1000 per
	// accelerator; the quick profile uses far fewer).
	NumDFGs int
	// Iterations is how many label-update rounds each DFG gets (§V-B "use
	// updated labels to map again and repeat").
	Iterations int
	Seed       int64
	// Workers is how many goroutines generate+label DFGs concurrently:
	// <= 0 means one per CPU (runtime.GOMAXPROCS), 1 runs serially. Each
	// DFG's random stream is derived from (Seed, index), so the resulting
	// Dataset — sample order and stats — is identical at every worker
	// count.
	Workers int

	DFG     dfg.RandomConfig
	MapOpts mapper.Options
	Filter  labels.FilterConfig
}

// DefaultConfig returns the quick-profile generation settings.
func DefaultConfig() Config {
	return Config{
		NumDFGs:    60,
		Iterations: 3,
		DFG:        dfg.DefaultRandomConfig(),
		MapOpts:    mapper.Options{MaxMoves: 900},
		Filter:     labels.DefaultFilterConfig(),
	}
}

// Stats reports what happened during generation.
type Stats struct {
	Generated int // DFGs created
	Mapped    int // DFGs with at least one successful mapping
	Admitted  int // DFGs surviving the label filter
}

// Dataset is the generated training data.
type Dataset struct {
	Samples []gnn.Sample
	Stats   Stats
}

// supportedComputeOps returns the non-memory op kinds that at least one PE
// of the architecture can execute. Training DFGs must stay inside this set —
// a random DFG with a compare on a fixed-function systolic array could never
// map, and §V-A wants DFGs assigned operations "according to the supported
// operations".
func supportedComputeOps(ar arch.Arch) []dfg.OpKind {
	var out []dfg.OpKind
	for k := 1; k < dfg.NumOpKinds(); k++ {
		op := dfg.OpKind(k)
		if op.IsMemory() || op == dfg.OpConst {
			continue
		}
		for pe := 0; pe < ar.NumPEs(); pe++ {
			if ar.SupportsOp(pe, op) {
				out = append(out, op)
				break
			}
		}
	}
	return out
}

// Generate builds a labelled dataset for ar.
func Generate(ar arch.Arch, cfg Config) *Dataset {
	if cfg.NumDFGs == 0 {
		cfg = DefaultConfig()
	}
	// Restrict the op pool to what the target can execute, preserving the
	// configured mix where possible.
	supported := map[dfg.OpKind]bool{}
	for _, op := range supportedComputeOps(ar) {
		supported[op] = true
	}
	var pool []dfg.OpKind
	for _, op := range cfg.DFG.Ops {
		if supported[op] {
			pool = append(pool, op)
		}
	}
	if len(pool) == 0 {
		pool = supportedComputeOps(ar)
	}
	cfg.DFG.Ops = pool

	// Fan out: each DFG is generated and labelled on its own worker with a
	// random stream derived from (Seed, index), then folded back into the
	// dataset in index order — so the samples, their order and the stats
	// are identical at every worker count, including Workers == 1.
	type genResult struct {
		sample *gnn.Sample
		mapped bool
	}
	results := parallel.MapOrdered(cfg.Workers, cfg.NumDFGs, func(i int) genResult {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(cfg.Seed, i)))
		g := dfg.Random(rng, cfg.DFG, dfgName(i))
		sample, ok := labelOne(ar, g, cfg, rng)
		return genResult{sample: sample, mapped: ok}
	})

	ds := &Dataset{}
	for _, r := range results {
		ds.Stats.Generated++
		if !r.mapped {
			continue
		}
		ds.Stats.Mapped++
		if r.sample != nil {
			ds.Samples = append(ds.Samples, *r.sample)
			ds.Stats.Admitted++
		}
	}
	return ds
}

func dfgName(i int) string {
	return "train" + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// labelOne runs the iterative label-derivation of §V-B for one DFG. The
// second return value reports whether any mapping succeeded; the sample is
// nil when the filter rejects the DFG.
func labelOne(ar arch.Arch, g *dfg.Graph, cfg Config, rng *rand.Rand) (*gnn.Sample, bool) {
	an := dfg.Analyze(g)
	cur := labels.Initial(an)
	var cands []labels.Candidate
	bestII := 0

	for iter := 0; iter < cfg.Iterations; iter++ {
		opts := cfg.MapOpts
		opts.Seed = rng.Int63()
		res, err := mapper.Map(ar, g, mapper.AlgPart, cur, opts)
		if err != nil || !res.OK {
			// An injected fault counts as a failed attempt; keep previous
			// labels, map again (paper §V-B).
			continue
		}
		extracted := labels.Extract(an, res.Stats(ar))
		cands = append(cands, labels.Candidate{
			Labels: extracted, II: res.II, RoutingCost: res.RoutingCost,
		})
		// Update the working labels only when the new mapping is at least
		// as good as anything seen so far.
		if bestII == 0 || res.II <= bestII {
			bestII = res.II
			cur = extracted
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	combined, n := labels.SelectAndCombine(cands)
	if _, ok := cfg.Filter.Admit(bestII, ar.MinII(g), n); !ok {
		return nil, true
	}
	return &gnn.Sample{Set: attr.Generate(g), Lbl: combined}, true
}

// Split partitions a dataset into train and test subsets with the given
// training fraction, shuffling deterministically by seed.
func Split(ds *Dataset, trainFrac float64, seed int64) (train, test []gnn.Sample) {
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(idx)) * trainFrac)
	if cut < 1 && len(idx) > 0 {
		cut = 1
	}
	for i, id := range idx {
		if i < cut {
			train = append(train, ds.Samples[id])
		} else {
			test = append(test, ds.Samples[id])
		}
	}
	return train, test
}
