// Package power provides the analytic power/performance model behind the
// paper's Fig. 10 (power efficiency in MOPS/W, normalized to LISA).
//
// The paper synthesizes its CGRAs in Verilog on a 22 nm process with Synopsys
// Design Compiler at 100 MHz. That toolchain is proprietary, so this package
// substitutes an analytic model: each PE contributes static leakage plus
// activity-proportional dynamic power, and throughput follows directly from
// the mapping's II (CGRA execution is fully deterministic, §VI). Fig. 10
// reports values *normalized to LISA*, and the normalized shape depends only
// on relative II and activity, which this model preserves.
package power

import (
	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
)

// ModelParams holds the per-PE energy coefficients (milliwatts at 100 MHz).
// The defaults are representative of published low-power CGRA numbers (a few
// mW per PE); only ratios matter for the normalized figures.
type ModelParams struct {
	FrequencyMHz float64
	StaticPerPE  float64 // leakage per PE
	ActiveALU    float64 // dynamic power of a busy ALU slot
	ActiveMem    float64 // dynamic power of a load/store slot
	ActiveRoute  float64 // dynamic power of a routing slot
}

// DefaultParams returns the reference coefficients.
func DefaultParams() ModelParams {
	return ModelParams{
		FrequencyMHz: 100,
		StaticPerPE:  0.35,
		ActiveALU:    1.0,
		ActiveMem:    1.4,
		ActiveRoute:  0.6,
	}
}

// Report is the modelled power/performance of one mapping.
type Report struct {
	II          int
	Ops         int     // DFG operations per loop iteration
	MOPS        float64 // millions of operations per second
	PowerWatts  float64
	MOPSPerWatt float64
}

// Evaluate models a successful mapping: ops/s = ops-per-iteration ×
// (frequency / II); power = static + dynamic activity averaged over the II
// window (every FU busy with an op or a routing hop draws dynamic power in
// its cycle).
func Evaluate(ar arch.Arch, g *dfg.Graph, ii, routingCost int, p ModelParams) Report {
	if p.FrequencyMHz == 0 {
		p = DefaultParams()
	}
	ops := g.NumNodes()
	aluOps, memOps := 0, 0
	for _, n := range g.Nodes {
		if n.Op.IsMemory() {
			memOps++
		} else {
			aluOps++
		}
	}
	// Activity is averaged over the II window: each op occupies one FU
	// cycle per iteration, each routing hop one routing slot.
	window := float64(ii)
	dynamic := (float64(aluOps)*p.ActiveALU +
		float64(memOps)*p.ActiveMem +
		float64(routingCost)*p.ActiveRoute) / window
	static := float64(ar.NumPEs()) * p.StaticPerPE
	watts := (static + dynamic) / 1000.0 // coefficients are in mW

	iterPerSec := p.FrequencyMHz * 1e6 / float64(ii)
	mops := float64(ops) * iterPerSec / 1e6
	return Report{
		II: ii, Ops: ops, MOPS: mops,
		PowerWatts: watts, MOPSPerWatt: mops / watts,
	}
}
