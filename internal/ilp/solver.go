// Package ilp provides the Integer Linear Programming baseline of the
// paper's evaluation (CGRA-ME's ILP mapper, §VI). It contains a small
// general-purpose 0–1 ILP solver — branch and bound with constraint
// propagation and objective bounding — and a mapping formulation with
// placement variables, exclusivity constraints and lazily generated routing
// no-good cuts.
//
// The solver is exact: given enough time it either proves infeasibility or
// returns an optimal solution. The paper's qualitative result is that exact
// optimization does not scale to large DFGs or arrays even with generous
// time limits; the same behaviour falls out of this implementation.
package ilp

import (
	"time"
)

// Sense is a linear constraint's comparison direction.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // Σ coef·x <= RHS
	GE              // Σ coef·x >= RHS
	EQ              // Σ coef·x == RHS
)

// Term is one coefficient–variable product.
type Term struct {
	Var  int
	Coef int
}

// Constraint is a linear constraint over binary variables.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   int
}

// Model is a 0–1 integer program: minimize Objective subject to Cons.
type Model struct {
	NumVars   int
	Objective []Term
	Cons      []Constraint

	// ExactlyOne lists groups of variables of which exactly one must be 1.
	// They are also regular EQ constraints, but declaring them here lets
	// the solver branch on whole groups (SOS1 branching), which is what
	// makes assignment-structured models tractable.
	ExactlyOne [][]int
}

// AddConstraint appends c to the model.
func (m *Model) AddConstraint(c Constraint) { m.Cons = append(m.Cons, c) }

// AddExactlyOne adds a group constraint Σ x == 1 and registers it for group
// branching.
func (m *Model) AddExactlyOne(vars []int) {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{Var: v, Coef: 1}
	}
	m.AddConstraint(Constraint{Terms: terms, Sense: EQ, RHS: 1})
	m.ExactlyOne = append(m.ExactlyOne, vars)
}

// Status reports how a solve ended.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusFeasible
	StatusInfeasible
	StatusTimeout
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "timeout"
	}
}

// Solution is an incumbent assignment.
type Solution struct {
	Values    []int8
	Objective int
}

// Solver carries search limits.
type Solver struct {
	TimeLimit time.Duration // zero means unlimited
	MaxNodes  int           // zero means unlimited
}

type searchCtx struct {
	m        *Model
	varCons  [][]int32 // var -> constraint indexes it appears in
	assign   []int8    // -1 unknown
	objCoef  []int
	best     *Solution
	bestObj  int
	deadline time.Time
	hasLimit bool
	nodes    int
	maxNodes int
	aborted  bool

	queue   []int32 // constraint worklist for propagation
	inQueue []bool
}

// Solve runs branch and bound on m.
func (s *Solver) Solve(m *Model) (Solution, Status) {
	ctx := &searchCtx{
		m:        m,
		assign:   make([]int8, m.NumVars),
		objCoef:  make([]int, m.NumVars),
		bestObj:  1 << 60,
		maxNodes: s.MaxNodes,
	}
	for i := range ctx.assign {
		ctx.assign[i] = -1
	}
	for _, t := range m.Objective {
		ctx.objCoef[t.Var] += t.Coef
	}
	ctx.varCons = make([][]int32, m.NumVars)
	for ci, c := range m.Cons {
		for _, t := range c.Terms {
			ctx.varCons[t.Var] = append(ctx.varCons[t.Var], int32(ci))
		}
	}
	ctx.inQueue = make([]bool, len(m.Cons))
	if s.TimeLimit > 0 {
		ctx.deadline = time.Now().Add(s.TimeLimit)
		ctx.hasLimit = true
	}

	ctx.search(nil)

	switch {
	case ctx.best != nil && !ctx.aborted:
		return *ctx.best, StatusOptimal
	case ctx.best != nil:
		return *ctx.best, StatusFeasible
	case ctx.aborted:
		return Solution{}, StatusTimeout
	default:
		return Solution{}, StatusInfeasible
	}
}

// timeUp polls the limits.
func (c *searchCtx) timeUp() bool {
	c.nodes++
	if c.maxNodes > 0 && c.nodes > c.maxNodes {
		c.aborted = true
		return true
	}
	if c.hasLimit && c.nodes%256 == 0 && time.Now().After(c.deadline) {
		c.aborted = true
		return true
	}
	return c.aborted
}

// bounds computes the reachable [min, max] of a constraint's LHS under the
// current partial assignment.
func (c *searchCtx) bounds(con *Constraint) (lo, hi int) {
	for _, t := range con.Terms {
		switch c.assign[t.Var] {
		case 1:
			lo += t.Coef
			hi += t.Coef
		case -1:
			if t.Coef > 0 {
				hi += t.Coef
			} else {
				lo += t.Coef
			}
		}
	}
	return lo, hi
}

// consistent reports whether a constraint can still be satisfied.
func consistent(sense Sense, rhs, lo, hi int) bool {
	switch sense {
	case LE:
		return lo <= rhs
	case GE:
		return hi >= rhs
	default:
		return lo <= rhs && hi >= rhs
	}
}

// propagate fixes forced variables until a fixed point, visiting only the
// constraints whose variables changed (worklist propagation). seeds is the
// set of variables assigned just before the call; nil seeds every
// constraint (the root node). It appends forced variables to trail and
// returns false on contradiction. The worklist is drained even on failure so
// the context stays reusable.
func (c *searchCtx) propagate(seeds []int, trail *[]int) bool {
	c.queue = c.queue[:0]
	push := func(ci int32) {
		if !c.inQueue[ci] {
			c.inQueue[ci] = true
			c.queue = append(c.queue, ci)
		}
	}
	if seeds == nil {
		for ci := range c.m.Cons {
			push(int32(ci))
		}
	} else {
		for _, v := range seeds {
			for _, ci := range c.varCons[v] {
				push(ci)
			}
		}
	}
	ok := true
	for len(c.queue) > 0 {
		ci := c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
		c.inQueue[ci] = false
		if !ok {
			continue // drain to reset inQueue
		}
		con := &c.m.Cons[ci]
		lo, hi := c.bounds(con)
		if !consistent(con.Sense, con.RHS, lo, hi) {
			ok = false
			continue
		}
		for _, t := range con.Terms {
			if c.assign[t.Var] != -1 {
				continue
			}
			okZero := c.valueOK(con, lo, hi, t.Coef, 0)
			okOne := c.valueOK(con, lo, hi, t.Coef, 1)
			var forced int8
			switch {
			case !okZero && !okOne:
				ok = false
			case !okZero:
				forced = 1
			case !okOne:
				forced = 0
			default:
				continue
			}
			if !ok {
				break
			}
			c.assign[t.Var] = forced
			*trail = append(*trail, t.Var)
			if forced == 1 {
				lo += max0(t.Coef)
				hi += min0(t.Coef)
			} else {
				hi -= max0(t.Coef)
				lo -= min0(t.Coef)
			}
			for _, other := range c.varCons[t.Var] {
				if other != ci {
					push(other)
				}
			}
		}
	}
	return ok
}

func max0(x int) int {
	if x > 0 {
		return x
	}
	return 0
}

func min0(x int) int {
	if x < 0 {
		return x
	}
	return 0
}

// valueOK tests whether setting a variable with coefficient coef to val keeps
// the constraint satisfiable, given the current [lo, hi] bounds.
func (c *searchCtx) valueOK(con *Constraint, lo, hi, coef, val int) bool {
	nlo, nhi := lo, hi
	if coef > 0 {
		if val == 1 {
			nlo += coef
		} else {
			nhi -= coef
		}
	} else if coef < 0 {
		if val == 1 {
			nhi += coef
		} else {
			nlo -= coef
		}
	}
	return consistent(con.Sense, con.RHS, nlo, nhi)
}

// objLowerBound is the objective value reachable from the current partial
// assignment (binary vars: unassigned positive coefficients contribute 0,
// negative ones contribute fully).
func (c *searchCtx) objLowerBound() int {
	lb := 0
	for v, coef := range c.objCoef {
		switch {
		case c.assign[v] == 1:
			lb += coef
		case c.assign[v] == -1 && coef < 0:
			lb += coef
		}
	}
	return lb
}

// pickGroup returns an ExactlyOne group with no assigned 1 yet, preferring
// the group with the fewest open variables (fail-first).
func (c *searchCtx) pickGroup() []int {
	var best []int
	bestOpen := 1 << 30
	for _, grp := range c.m.ExactlyOne {
		open, done := 0, false
		for _, v := range grp {
			switch c.assign[v] {
			case 1:
				done = true
			case -1:
				open++
			}
			if done {
				break
			}
		}
		if done || open == 0 {
			continue
		}
		if open < bestOpen {
			bestOpen = open
			best = grp
		}
	}
	return best
}

func (c *searchCtx) search(seeds []int) {
	if c.timeUp() {
		return
	}
	var trail []int
	if !c.propagate(seeds, &trail) {
		c.undo(trail)
		return
	}
	if c.objLowerBound() >= c.bestObj {
		c.undo(trail)
		return
	}

	grp := c.pickGroup()
	if grp == nil {
		// All groups satisfied; finish remaining free vars greedily (they
		// can only be constrained by LE/GE constraints; propagation has
		// already fixed the forced ones, prefer 0 for positive objective).
		var tail []int
		feasible := true
		for v := 0; v < c.m.NumVars && feasible; v++ {
			if c.assign[v] != -1 {
				continue
			}
			want := int8(0)
			if c.objCoef[v] < 0 {
				want = 1
			}
			c.assign[v] = want
			tail = append(tail, v)
			if !c.propagate([]int{v}, &tail) {
				// Try the other value.
				c.assign[v] = 1 - want
				if !c.propagate([]int{v}, &tail) {
					feasible = false
				}
			}
		}
		if feasible {
			obj := 0
			for v, coef := range c.objCoef {
				if c.assign[v] == 1 {
					obj += coef
				}
			}
			if obj < c.bestObj {
				c.bestObj = obj
				vals := append([]int8(nil), c.assign...)
				c.best = &Solution{Values: vals, Objective: obj}
			}
		}
		c.undo(tail)
		c.undo(trail)
		return
	}

	// Branch: try each open variable of the group at 1, cheapest first.
	open := make([]int, 0, len(grp))
	for _, v := range grp {
		if c.assign[v] == -1 {
			open = append(open, v)
		}
	}
	for i := 0; i < len(open); i++ {
		for j := i + 1; j < len(open); j++ {
			if c.objCoef[open[j]] < c.objCoef[open[i]] {
				open[i], open[j] = open[j], open[i]
			}
		}
	}
	var explored []int
	for _, v := range open {
		if c.aborted {
			break
		}
		c.assign[v] = 1
		c.search([]int{v})
		// Exclude v from later subtrees of this node: solutions with v=1
		// were fully enumerated above.
		c.assign[v] = 0
		explored = append(explored, v)
	}
	c.undo(explored)
	c.undo(trail)
}

func (c *searchCtx) undo(trail []int) {
	for _, v := range trail {
		c.assign[v] = -1
	}
}
