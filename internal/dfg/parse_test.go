package dfg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDOTRoundTrip(t *testing.T) {
	g := paperExample()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDOT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumNodes() != g.NumNodes() || parsed.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			parsed.NumNodes(), g.NumNodes(), parsed.NumEdges(), g.NumEdges())
	}
	// Node names and ops survive (DOT IDs are n<ID>, labels carry names/ops).
	for i := range g.Nodes {
		if parsed.Nodes[i].Op != g.Nodes[i].Op {
			t.Errorf("node %d op %s != %s", i, parsed.Nodes[i].Op, g.Nodes[i].Op)
		}
	}
}

func TestParseDOTCGRAMEStyle(t *testing.T) {
	src := `digraph gemm {
		a [opcode=load];
		b [opcode=load];
		m [opcode=mul];
		s [opcode=store];
		addr [opcode=add];
		a -> m;
		b -> m;
		addr -> s;
		m -> s;
		a -> addr;
	}`
	g, err := ParseDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "gemm" {
		t.Errorf("name = %q", g.Name)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("%d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	m, _ := g.NodeByName("m")
	if g.Nodes[m].Op != OpMul {
		t.Error("opcode attribute ignored")
	}
}

func TestParseDOTImplicitNodes(t *testing.T) {
	src := "digraph d { x -> y; y -> z; }"
	g, err := ParseDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("%d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	// Implicit nodes default to add.
	x, _ := g.NodeByName("x")
	if g.Nodes[x].Op != OpAdd {
		t.Error("implicit node op should default to add")
	}
}

func TestParseDOTRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"", // no digraph
		"digraph d { a [opcode=frobnicate]; a -> b; }", // bad op
		"digraph d { a -> b; b -> a; }",                // cycle (Validate)
	} {
		if _, err := ParseDOT(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDOT(%q) should fail", src)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, DefaultRandomConfig(), "r")
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Nodes {
			if back.Nodes[i].Op != g.Nodes[i].Op || back.Nodes[i].Name != g.Nodes[i].Name {
				return false
			}
		}
		for i := range g.Edges {
			if back.Edges[i].From != g.Edges[i].From || back.Edges[i].To != g.Edges[i].To {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	for _, src := range []string{
		"{",
		`{"name":"x","nodes":[{"name":"a","op":"zap"}],"edges":[]}`,
		`{"name":"x","nodes":[{"name":"a","op":"add"}],"edges":[[0,5]]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", src)
		}
	}
}
