package registry

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
)

// fetchFor returns a FetchFunc serving m, counting calls.
func fetchFor(m *gnn.Model, calls *atomic.Int32) FetchFunc {
	return func(name string) (*gnn.Model, string, error) {
		calls.Add(1)
		return m, "http://peer-a:9001", nil
	}
}

func TestFetchedModelWinsOverTraining(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	shipped := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	var calls atomic.Int32
	r.SetFetch(fetchFor(shipped, &calls))

	m, err := r.ModelFor(ar)
	if err != nil {
		t.Fatal(err)
	}
	if m != shipped {
		t.Fatal("ModelFor trained locally despite a working fetch source")
	}
	info := r.InfoFor(ar.Name())
	if !info.Ready || info.Provenance != ProvShipped || info.Source != "http://peer-a:9001" {
		t.Fatalf("InfoFor = %+v, want ready/shipped from peer-a", info)
	}
	ctr := r.Counters()
	if ctr.Fetches != 1 || ctr.TrainRuns != 0 || ctr.FetchErrors != 0 {
		t.Fatalf("Counters = %+v, want exactly one fetch and zero training runs", ctr)
	}
	if counts := r.ProvenanceCounts(); counts[ProvShipped] != 1 {
		t.Fatalf("ProvenanceCounts = %v", counts)
	}
}

// N concurrent requests for one model-less arch must trigger exactly one
// fetch — the busy state singleflights the whole acquisition ladder.
func TestFetchSingleflight(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	shipped := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	var calls atomic.Int32
	gate := make(chan struct{})
	r.SetFetch(func(name string) (*gnn.Model, string, error) {
		calls.Add(1)
		<-gate // hold every concurrent caller on the busy slot
		return shipped, "http://peer-a:9001", nil
	})

	const callers = 16
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			if m, err := r.ModelFor(ar); err != nil || m != shipped {
				t.Errorf("ModelFor = (%v, %v)", m, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("%d concurrent requests triggered %d fetches, want 1", callers, n)
	}
}

func TestTransientFetchErrorRetriesNextRequest(t *testing.T) {
	cfg := quickCfg()
	cfg.TrainOnDemand = false // isolate the fetch rung
	r := New(cfg)
	ar := arch.NewBaseline4x4()
	shipped := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	var calls atomic.Int32
	r.SetFetch(func(name string) (*gnn.Model, string, error) {
		if calls.Add(1) == 1 {
			return nil, "", errors.New("dial tcp: connection refused")
		}
		return shipped, "http://peer-a:9001", nil
	})

	if _, err := r.ModelFor(ar); err == nil {
		t.Fatal("first ModelFor succeeded through a failing fetch")
	}
	// Transport-class failure: slot back to idle, error observable but NOT
	// cached as a failed state — no Retry needed before the next attempt.
	if err := r.Err(ar.Name()); err != nil {
		t.Fatalf("transient fetch failure cached as permanent: %v", err)
	}
	if info := r.InfoFor(ar.Name()); info.FetchErr == nil {
		t.Fatal("InfoFor lost the fetch error")
	}
	m, err := r.ModelFor(ar)
	if err != nil || m != shipped {
		t.Fatalf("second ModelFor = (%v, %v), want the shipped model with no manual Retry", m, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fetch ran %d times, want 2", n)
	}
	if info := r.InfoFor(ar.Name()); info.FetchErr != nil {
		t.Fatalf("successful fetch left a stale fetch error: %v", info.FetchErr)
	}
	if ctr := r.Counters(); ctr.Fetches != 1 || ctr.FetchErrors != 1 {
		t.Fatalf("Counters = %+v", ctr)
	}
}

func TestPermanentFetchErrorIsCachedUntilRetry(t *testing.T) {
	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r := New(cfg)
	ar := arch.NewBaseline4x4()
	shipped := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	var calls atomic.Int32
	bad := true
	r.SetFetch(func(name string) (*gnn.Model, string, error) {
		calls.Add(1)
		if bad {
			return nil, "", Permanent(fmt.Errorf("payload sha256 mismatch"))
		}
		return shipped, "http://peer-a:9001", nil
	})

	_, err1 := r.ModelFor(ar)
	if err1 == nil || !IsPermanent(err1) {
		t.Fatalf("err1 = %v, want the permanent validation error", err1)
	}
	// Cached: the second request answers from the failed slot without
	// re-fetching the same bad bytes.
	_, err2 := r.ModelFor(ar)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("err2 = %v, want the cached %v", err2, err1)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fetch ran %d times for a cached permanent failure, want 1", n)
	}
	if err := r.Err(ar.Name()); err == nil {
		t.Fatal("Err reports nothing for the failed slot")
	}
	// ...but not forever: Retry re-opens the slot, and a healed source wins.
	bad = false
	if !r.Retry(ar.Name()) {
		t.Fatal("Retry found nothing to clear")
	}
	if m, err := r.ModelFor(ar); err != nil || m != shipped {
		t.Fatalf("ModelFor after Retry = (%v, %v)", m, err)
	}
	if info := r.InfoFor(ar.Name()); info.Provenance != ProvShipped || info.FetchErr != nil {
		t.Fatalf("InfoFor after heal = %+v", info)
	}
}

func TestFetchFailureFallsBackToTraining(t *testing.T) {
	r := New(quickCfg()) // TrainOnDemand
	ar := arch.NewBaseline4x4()
	r.SetFetch(func(name string) (*gnn.Model, string, error) {
		return nil, "", errors.New("no peer reachable")
	})
	m, err := r.ModelFor(ar)
	if err != nil || m == nil {
		t.Fatalf("ModelFor = (%v, %v), want local training to answer", m, err)
	}
	info := r.InfoFor(ar.Name())
	if info.Provenance != ProvTrained {
		t.Fatalf("provenance = %q, want trained", info.Provenance)
	}
	if info.FetchErr == nil {
		t.Fatal("the failed fetch rung left no trace for /v1/archs")
	}
	if ctr := r.Counters(); ctr.TrainRuns != 1 || ctr.FetchErrors != 1 || ctr.Fetches != 0 {
		t.Fatalf("Counters = %+v", ctr)
	}
}

func TestModelBytesRoundTrip(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelBytes(ar.Name()); err == nil {
		t.Fatal("ModelBytes served an unresolved slot")
	}
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	r.Put(pre)
	b, err := r.ModelBytes(ar.Name())
	if err != nil {
		t.Fatal(err)
	}
	m, err := gnn.Load(bytes.NewReader(b), gnn.NewModel(rand.New(rand.NewSource(1)), ""))
	if err != nil {
		t.Fatalf("ModelBytes payload does not round-trip through gnn.Load: %v", err)
	}
	if m.ArchName != ar.Name() {
		t.Fatalf("round-tripped arch = %q", m.ArchName)
	}
	// Serialization is deterministic — the byte-identity the smoke test's
	// owner-vs-replica comparison rests on.
	b2, err := r.ModelBytes(ar.Name())
	if err != nil || string(b2) != string(b) {
		t.Fatal("ModelBytes is not deterministic")
	}
}

// Satellite: registry.Retry error-caching semantics under concurrency.
// Cached failures answer without re-work, Retry clears exactly once, and a
// subsequent success replaces the cached error — with -race across
// concurrent ModelFor/Err/Retry callers.
func TestRetryCachedErrorConcurrent(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelFor(ar); err == nil {
		fault.Deactivate()
		t.Fatal("ModelFor succeeded with the gnn.train fault armed")
	}
	fault.Deactivate()

	// Phase 1: concurrent readers of the cached failure — none may retrain.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.ModelFor(ar); err == nil {
				t.Error("cached failure silently retrained")
			}
			if r.Err(ar.Name()) == nil {
				t.Error("Err lost the cached failure")
			}
		}()
	}
	wg.Wait()
	if ctr := r.Counters(); ctr.TrainRuns != 1 {
		t.Fatalf("TrainRuns = %d after cached-failure reads, want 1", ctr.TrainRuns)
	}

	// Phase 2: concurrent Retry callers — exactly one clears the slot.
	var cleared atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r.Retry(ar.Name()) {
				cleared.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := cleared.Load(); n != 1 {
		t.Fatalf("%d Retry callers claimed the clear, want exactly 1", n)
	}

	// Phase 3: concurrent ModelFor after the heal — one retrain, all served.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.ModelFor(ar); err != nil {
				t.Errorf("ModelFor after Retry: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := r.Err(ar.Name()); err != nil {
		t.Fatalf("success did not replace the cached error: %v", err)
	}
	if ctr := r.Counters(); ctr.TrainRuns != 2 {
		t.Fatalf("TrainRuns = %d after the healed retrain, want 2", ctr.TrainRuns)
	}
}
