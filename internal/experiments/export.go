package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/lisa-go/lisa/internal/power"
	"github.com/lisa-go/lisa/internal/visual"
)

// jsonComparison is the machine-readable form of a Comparison, for
// downstream plotting (the paper artifact ships result text files plus a
// plotting script; this is the equivalent).
type jsonComparison struct {
	Label   string                `json:"label"`
	Arch    string                `json:"arch"`
	Methods []Method              `json:"methods"`
	Rows    []jsonComparisonRow   `json:"rows"`
	Summary map[Method]jsonMethod `json:"summary"`
}

type jsonComparisonRow struct {
	Kernel  string                `json:"kernel"`
	Results map[Method]jsonResult `json:"results"`
}

type jsonResult struct {
	OK          bool          `json:"ok"`
	II          int           `json:"ii"`
	RoutingCost int           `json:"routingCost,omitempty"`
	Moves       int           `json:"moves,omitempty"`
	Duration    time.Duration `json:"durationNs"`
}

type jsonMethod struct {
	Mapped int `json:"mapped"`
}

// WriteJSON serializes a comparison.
func (cmp *Comparison) WriteJSON(w io.Writer) error {
	out := jsonComparison{
		Label:   cmp.Label,
		Arch:    cmp.Arch.Name(),
		Methods: cmp.Methods,
		Summary: map[Method]jsonMethod{},
	}
	for _, r := range cmp.Rows {
		row := jsonComparisonRow{Kernel: r.Kernel, Results: map[Method]jsonResult{}}
		for _, m := range cmp.Methods {
			res, ok := r.Results[m]
			if !ok {
				continue
			}
			row.Results[m] = jsonResult{
				OK: res.OK, II: res.II, RoutingCost: res.RoutingCost,
				Moves: res.Moves, Duration: res.Duration,
			}
			if res.OK {
				s := out.Summary[m]
				s.Mapped++
				out.Summary[m] = s
			}
		}
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// WriteSVG renders a comparison as the paper-style grouped bar chart
// (II per kernel per method; missing bars mean "cannot map").
func (cmp *Comparison) WriteSVG(w io.Writer) error {
	var cats []string
	for _, r := range cmp.Rows {
		cats = append(cats, r.Kernel)
	}
	var series []visual.Series
	for _, m := range cmp.Methods {
		s := visual.Series{Name: string(m), Values: map[string]float64{}}
		for _, r := range cmp.Rows {
			if res := r.Results[m]; res.OK {
				s.Values[r.Kernel] = float64(res.II)
			}
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s — %s (II, lower is better; x = cannot map)", cmp.Label, cmp.Arch.Name())
	return visual.WriteBarChart(w, title, "II", cats, series)
}

// WritePowerSVG renders Fig. 10 rows as a chart.
func WritePowerSVG(w io.Writer, cmp *Comparison, rows []PowerRow, params power.ModelParams) error {
	var cats []string
	for _, r := range rows {
		cats = append(cats, r.Kernel)
	}
	var series []visual.Series
	for _, m := range cmp.Methods {
		s := visual.Series{Name: string(m), Values: map[string]float64{}}
		for _, r := range rows {
			if v, ok := r.Normalized[m]; ok {
				s.Values[r.Kernel] = v
			}
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s — MOPS/W normalized to LISA", cmp.Arch.Name())
	return visual.WriteBarChart(w, title, "norm. MOPS/W", cats, series)
}

// WriteTimesSVG renders Fig. 11 rows as a chart (log-ish view is avoided;
// raw milliseconds with the paper's termination-time convention).
func WriteTimesSVG(w io.Writer, cmp *Comparison, rows []TimeRow) error {
	var cats []string
	for _, r := range rows {
		cats = append(cats, r.Kernel)
	}
	var series []visual.Series
	for _, m := range cmp.Methods {
		s := visual.Series{Name: string(m), Values: map[string]float64{}}
		for _, r := range rows {
			s.Values[r.Kernel] = float64(r.Times[m].Milliseconds())
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s — compilation time (ms)", cmp.Arch.Name())
	return visual.WriteBarChart(w, title, "ms", cats, series)
}
