package registry

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/traingen"
)

// quickCfg keeps on-demand training inside a test run.
func quickCfg() Config {
	return Config{
		TrainGen: traingen.Config{
			NumDFGs:    12,
			Iterations: 2,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 500},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg:      gnn.TrainConfig{Epochs: 2, LR: 0.003, WeightDecay: 0.0005},
		Seed:          1,
		TrainOnDemand: true,
	}
}

func TestConcurrentModelForTrainsOnce(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	const callers = 8
	models := make([]*gnn.Model, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			m, err := r.ModelFor(ar)
			if err != nil {
				t.Errorf("ModelFor: %v", err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent ModelFor calls resolved different model instances")
		}
	}
	if got := r.Ready(); len(got) != 1 || got[0] != ar.Name() {
		t.Fatalf("Ready() = %v, want [%s]", got, ar.Name())
	}
	stats, err := r.StatsFor(ar)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generated == 0 {
		t.Fatal("StatsFor reports zero generated DFGs after training")
	}
}

func TestPreloadedModelWinsOverTraining(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	if !r.Put(pre) {
		t.Fatal("Put of a fresh architecture returned false")
	}
	if r.Put(pre) {
		t.Fatal("second Put for the same architecture claimed to win")
	}
	m, err := r.ModelFor(ar)
	if err != nil {
		t.Fatal(err)
	}
	if m != pre {
		t.Fatal("ModelFor trained a new model despite a pre-loaded one")
	}
}

func TestTrainOnDemandDisabled(t *testing.T) {
	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r := New(cfg)
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelFor(ar); err == nil {
		t.Fatal("ModelFor trained with TrainOnDemand disabled")
	}
	// The failed lookup must not poison the slot for a later Put.
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	if !r.Put(pre) {
		t.Fatal("Put after a denied ModelFor returned false")
	}
	if m, err := r.ModelFor(ar); err != nil || m != pre {
		t.Fatalf("ModelFor after Put = (%v, %v), want the pre-loaded model", m, err)
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"cgra-4x4", "cgra-8x8"} {
		m := gnn.NewModel(rand.New(rand.NewSource(3)), name)
		f, err := os.Create(filepath.Join(dir, name+".model.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r := New(cfg)
	names, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "cgra-4x4" || names[1] != "cgra-8x8" {
		t.Fatalf("LoadDir = %v", names)
	}
	ar, _ := arch.ByName("cgra-4x4")
	if _, err := r.ModelFor(ar); err != nil {
		t.Fatalf("ModelFor after LoadDir: %v", err)
	}
	if !r.Has("cgra-8x8") || r.Has("systolic-5x5") {
		t.Fatal("Has reports the wrong set of loaded models")
	}
}

func TestLoadDirRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	if _, err := r.LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a corrupt model file")
	}
}

// A failed training run must park the slot: every later ModelFor returns
// the same cached error instantly, with no second training attempt.
func TestTrainingFailureIsCachedNotRetried(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	_, err1 := r.ModelFor(ar)
	if err1 == nil {
		t.Fatal("ModelFor succeeded with the gnn.train fault armed")
	}
	// Disarm: a retraining attempt would now succeed, so a second error
	// proves the failure was cached rather than re-executed.
	fault.Deactivate()
	_, err2 := r.ModelFor(ar)
	if err2 == nil {
		t.Fatal("failed slot silently retrained on the second ModelFor")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("cached error changed: %q vs %q", err1, err2)
	}
	if got := r.Err(ar.Name()); got == nil || got.Error() != err1.Error() {
		t.Fatalf("Err(%q) = %v, want the cached training error", ar.Name(), got)
	}
	if r.Has(ar.Name()) {
		t.Fatal("Has reports a model for a failed slot")
	}
}

func TestTrainingPanicBecomesCachedError(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=panic:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	_, err1 := r.ModelFor(ar)
	if err1 == nil || !strings.Contains(err1.Error(), "panicked") {
		t.Fatalf("ModelFor under a panic fault = %v, want a cached panic error", err1)
	}
}

func TestRetryClearsFailedSlot(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelFor(ar); err == nil {
		fault.Deactivate()
		t.Fatal("ModelFor succeeded with the gnn.train fault armed")
	}
	fault.Deactivate()
	if r.Retry("no-such-arch") {
		t.Fatal("Retry cleared a slot that never existed")
	}
	if !r.Retry(ar.Name()) {
		t.Fatal("Retry found nothing to clear on a failed slot")
	}
	if r.Retry(ar.Name()) {
		t.Fatal("second Retry claimed to clear an already-idle slot")
	}
	if _, err := r.ModelFor(ar); err != nil {
		t.Fatalf("ModelFor after Retry: %v", err)
	}
	if got := r.Err(ar.Name()); got != nil {
		t.Fatalf("Err after successful retrain = %v", got)
	}
}

func TestPutHealsFailedSlot(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelFor(ar); err == nil {
		fault.Deactivate()
		t.Fatal("ModelFor succeeded with the gnn.train fault armed")
	}
	fault.Deactivate()
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	if !r.Put(pre) {
		t.Fatal("Put did not heal the failed slot")
	}
	if m, err := r.ModelFor(ar); err != nil || m != pre {
		t.Fatalf("ModelFor after healing Put = (%v, %v), want the pre-loaded model", m, err)
	}
}

func TestLoadFileFaultSite(t *testing.T) {
	dir := t.TempDir()
	ar := arch.NewBaseline4x4()
	m := gnn.NewModel(rand.New(rand.NewSource(3)), ar.Name())
	path := filepath.Join(dir, ar.Name()+".model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	plan, err := fault.ParsePlan("registry.load=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	if _, err := r.LoadFile(path); err == nil {
		fault.Deactivate()
		t.Fatal("LoadFile succeeded with the registry.load fault armed")
	}
	fault.Deactivate()
	// The failed load leaves no residue: the same file loads cleanly.
	if name, err := r.LoadFile(path); err != nil || name != ar.Name() {
		t.Fatalf("LoadFile after disarming = (%q, %v)", name, err)
	}
}

func TestLabelsForPredictsAndPropagatesErrors(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	lbl, err := r.LabelsFor(ar, g)
	if err != nil {
		t.Fatal(err)
	}
	if lbl == nil {
		t.Fatal("LabelsFor returned nil labels from a trained model")
	}

	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r2 := New(cfg)
	if _, err := r2.LabelsFor(ar, g); err == nil {
		t.Fatal("LabelsFor succeeded without a model and with training disabled")
	}
}

func TestLabelsForBatchMatchesPerGraph(t *testing.T) {
	// Use a pre-seeded (untrained) model so the test measures batching, not
	// training time; the fused path runs either way.
	r := New(Config{TrainOnDemand: false})
	ar := arch.NewBaseline4x4()
	r.Put(gnn.NewModel(rand.New(rand.NewSource(1)), ar.Name()))
	gs := []*dfg.Graph{
		kernels.MustByName("gemm"),
		kernels.MustByName("syrk"),
		kernels.MustByName("doitgen"),
	}
	batch, err := r.LabelsForBatch(ar, gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(gs) {
		t.Fatalf("batch returned %d label sets, want %d", len(batch), len(gs))
	}
	for i, g := range gs {
		single, err := r.LabelsFor(ar, g)
		if err != nil {
			t.Fatal(err)
		}
		for v := range single.Order {
			if batch[i].Order[v] != single.Order[v] {
				t.Fatalf("%s: batched Order[%d] = %v, single = %v", g.Name, v, batch[i].Order[v], single.Order[v])
			}
		}
		for e := range single.Spatial {
			if batch[i].Spatial[e] != single.Spatial[e] || batch[i].Temporal[e] != single.Temporal[e] {
				t.Fatalf("%s: batched edge labels diverge at %d", g.Name, e)
			}
		}
	}

	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r2 := New(cfg)
	if _, err := r2.LabelsForBatch(ar, gs); err == nil {
		t.Fatal("LabelsForBatch succeeded without a model and with training disabled")
	}
}
