// Package engine is the single dispatch point from an engine name
// (lisa|sa|sa-rp|sa-m|partial|greedy|ilp) to a mapping run. The lisa-map
// CLI and the lisa-serve daemon both resolve requests through this package,
// so the set of engines and the way each one is invoked cannot drift
// between the two front ends.
//
// Run adds the graceful-degradation ladder on top of the raw Map dispatch,
// mirroring how production placement stacks pair a learned path with a
// deterministic fallback: a label-using engine that cannot obtain GNN
// labels falls back to plain SA, an engine invocation that errors or
// panics falls back to SA and then to greedy list scheduling, and an SA
// sweep that exhausts its deadline with no valid mapping is replaced by
// the greedy mapper. Every fallback taken is recorded on
// mapper.Result.Degraded, so callers (and the /v1/map response) can tell a
// first-choice result from a degraded one.
package engine

import (
	"fmt"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
)

// Name identifies a mapping engine.
type Name string

// The seven engines exposed by the CLIs and the service.
const (
	LISA    Name = "lisa"    // full label-aware SA (Algorithm 1)
	SA      Name = "sa"      // vanilla simulated annealing
	SARP    Name = "sa-rp"   // SA + GNN routing priority (Fig. 12 ablation)
	SAM     Name = "sa-m"    // SA with 10x movements (Fig. 13 ablation)
	Partial Name = "partial" // labels seed the initial mapping only
	Greedy  Name = "greedy"  // deterministic list scheduling
	ILP     Name = "ilp"     // exact branch-and-bound mapper
)

// Names lists every engine in presentation order.
func Names() []string {
	return []string{"lisa", "sa", "sa-rp", "sa-m", "partial", "greedy", "ilp"}
}

// Parse validates an engine name from a flag or request field.
func Parse(s string) (Name, error) {
	for _, n := range Names() {
		if s == n {
			return Name(s), nil
		}
	}
	return "", fmt.Errorf("engine: unknown engine %q (have %v)", s, Names())
}

// UsesLabels reports whether the engine consumes GNN-predicted labels.
// Label-using engines fall back to the §V-B initialization when mapped
// without a model.
func (n Name) UsesLabels() bool {
	switch n {
	case LISA, SARP, Partial:
		return true
	}
	return false
}

// Deterministic reports whether the engine's result is a pure function of
// (DFG, architecture, options, seed). The SA family and greedy qualify; the
// ILP mapper's outcome depends on its wall-clock time budget.
func (n Name) Deterministic() bool {
	return n != ILP
}

// Options carries the budgets for both engine families; only the half
// matching the selected engine is consulted.
type Options struct {
	Map mapper.Options // SA-family and greedy budgets
	ILP ilp.Options    // exact-mapper limits
}

// Map runs the named engine for g on ar — the raw dispatch, no fallback.
// lbl supplies GNN labels for the label-using engines and may be nil (§V-B
// fallback); it is ignored by the others. Errors are an unknown engine name
// and injected faults (internal/fault); a mapping that fails to converge is
// a Result with OK=false, not an error.
func Map(ar arch.Arch, g *dfg.Graph, eng Name, lbl *labels.Labels, opts Options) (mapper.Result, error) {
	switch eng {
	case ILP:
		return ilp.Map(ar, g, opts.ILP), nil
	case Greedy:
		return mapper.MapGreedy(ar, g, opts.Map), nil
	case LISA, SA, SARP, SAM, Partial:
		return mapper.Map(ar, g, mapper.Algorithm(eng), lbl, opts.Map)
	default:
		return mapper.Result{}, fmt.Errorf("engine: unknown engine %q (have %v)", eng, Names())
	}
}

// LabelSource supplies GNN-predicted labels for the label-using engines.
// registry.Registry implements it (model lookup or lazy training per
// architecture); StaticLabels adapts a single pre-computed prediction.
type LabelSource interface {
	LabelsFor(ar arch.Arch, g *dfg.Graph) (*labels.Labels, error)
}

// StaticLabels is a LabelSource returning fixed labels (nil is valid and
// selects the §V-B initialization inside the mapper).
type StaticLabels struct{ L *labels.Labels }

// LabelsFor returns the fixed labels.
func (s StaticLabels) LabelsFor(arch.Arch, *dfg.Graph) (*labels.Labels, error) { return s.L, nil }

// Request is one engine invocation for Run.
type Request struct {
	Engine Name
	// Labels resolves GNN labels for the label-using engines; nil runs them
	// with the §V-B initialization (no label rung in the ladder).
	Labels LabelSource
	Opts   Options
	// NoFallback disables the degradation ladder: the named engine runs
	// exactly once and its error, if any, is returned unchanged.
	NoFallback bool
}

// RunResult is a Run outcome: the mapping plus the engine that actually
// produced it (== the requested engine unless the ladder degraded).
type RunResult struct {
	mapper.Result
	Engine Name
}

// DegradedRun reports whether any fallback rung was taken.
func (r *RunResult) DegradedRun() bool { return len(r.Result.Degraded) > 0 }

// Run executes the request behind the graceful-degradation ladder:
//
//  1. label-using engine, labels unavailable  → plain sa (§V-B has no model)
//  2. engine invocation errors or panics      → plain sa
//  3. sa errors or panics                     → greedy
//  4. deadline exhausted, no valid mapping    → greedy
//
// Each rung taken appends one "from→to: reason" step to Result.Degraded.
// ILP and greedy have no ladder below them (greedy IS the deterministic
// floor; ILP is explicitly exact-or-nothing): their errors return as-is,
// as does every error under NoFallback. A nil error therefore means the
// returned result — possibly degraded, possibly OK=false — is the best the
// ladder could do, and the daemon never has to crash for an engine fault.
func Run(ar arch.Arch, g *dfg.Graph, req Request) (RunResult, error) {
	eng := req.Engine
	if _, err := Parse(string(eng)); err != nil {
		return RunResult{}, err
	}
	var chain []string
	var lbl *labels.Labels
	if eng.UsesLabels() && req.Labels != nil {
		l, err := req.Labels.LabelsFor(ar, g)
		switch {
		case err == nil:
			lbl = l
		case req.NoFallback:
			return RunResult{}, fmt.Errorf("engine: %s labels: %w", eng, err)
		default:
			chain = append(chain, fmt.Sprintf("%s→sa: labels unavailable: %v", eng, err))
			eng, lbl = SA, nil
		}
	}
	res, err := safeMap(ar, g, eng, lbl, req.Opts)
	if err != nil && !req.NoFallback && eng != Greedy && eng != ILP {
		if eng != SA {
			chain = append(chain, fmt.Sprintf("%s→sa: %v", eng, err))
			eng, lbl = SA, nil
			res, err = safeMap(ar, g, eng, lbl, req.Opts)
		}
		if err != nil {
			chain = append(chain, fmt.Sprintf("%s→greedy: %v", eng, err))
			eng = Greedy
			res, err = safeMap(ar, g, eng, nil, req.Opts)
		}
	}
	if err != nil {
		return RunResult{}, err
	}
	if !res.OK && res.DeadlineExceeded && eng != Greedy && eng != ILP && !req.NoFallback {
		chain = append(chain, fmt.Sprintf("%s→greedy: deadline exceeded with no valid mapping", eng))
		eng = Greedy
		gres, gerr := safeMap(ar, g, eng, nil, req.Opts)
		if gerr != nil {
			return RunResult{}, gerr
		}
		res = gres
	}
	res.Degraded = chain
	return RunResult{Result: res, Engine: eng}, nil
}

// safeMap is Map behind a panic fence: a panicking engine (an injected
// fault or an organic bug) becomes an error the ladder can degrade on,
// instead of a crashed worker.
func safeMap(ar arch.Arch, g *dfg.Graph, eng Name, lbl *labels.Labels, opts Options) (res mapper.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: %s panicked: %v", eng, r)
		}
	}()
	return Map(ar, g, eng, lbl, opts)
}
