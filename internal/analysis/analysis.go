// Package analysis is lisa-vet's static-analysis driver: a pure-stdlib
// (go/parser, go/ast, go/types, go/token — no x/tools) framework with four
// repo-specific analyzers that machine-check the determinism invariants the
// LISA pipeline depends on.
//
// Reproducible GNN-guided mapping means the same DFG + arch + seed must
// yield byte-identical results: the traingen→gnn→mapper pipeline corrupts
// its own training labels if any hot path drifts, and the lisa-serve result
// cache serves stale bytes as ground truth. Three classes of drift have
// each been fixed by hand in past PRs — map-iteration order, shared global
// RNG streams, and wall-clock readings leaking into results — so lisa-vet
// checks all three on every commit, plus silently discarded errors (a
// dropped error can mask the first two).
//
// Diagnostics are suppressed per line with
//
//	//lisa:nondet-ok <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare //lisa:nondet-ok is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string // short lowercase identifier, shown in diagnostics
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// All is the full analyzer set run by `lisa-vet` with no -run flag.
var All = []*Analyzer{MapRange, GlobalRand, WallClock, ErrDrop}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Pass couples one analyzer with one package; analyzers report through it.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Position: position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker has no record.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to the object it uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// suppressPrefix introduces a per-line suppression comment. The comment
// applies to diagnostics on its own line or the line directly below (so a
// standalone comment line can annotate the statement it precedes).
const suppressPrefix = "lisa:nondet-ok"

// suppression is one //lisa:nondet-ok comment, located by file and line.
type suppression struct {
	file   string
	line   int
	reason string
	pos    token.Pos
}

// collectSuppressions scans a parsed file's comments for suppressPrefix.
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, suppressPrefix) {
				continue
			}
			rest := text[len(suppressPrefix):]
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // e.g. lisa:nondet-okay — some other marker
			}
			pos := fset.Position(c.Pos())
			out = append(out, suppression{
				file:   pos.Filename,
				line:   pos.Line,
				reason: strings.TrimSpace(rest),
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// suppressed reports whether d is covered by a suppression comment on its
// line or the line directly above.
func (pkg *Package) suppressed(d Diagnostic) bool {
	for _, s := range pkg.suppressions {
		if s.file == d.File && (s.line == d.Line || s.line == d.Line-1) {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package, drops suppressed
// diagnostics, reports malformed suppression comments, and returns the
// remainder sorted by file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !pkg.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
		// A suppression without a reason defeats the point of the audit
		// trail: reject it like a finding.
		for _, s := range pkg.suppressions {
			if s.reason == "" {
				diags = append(diags, Diagnostic{
					File:     s.file,
					Line:     s.line,
					Col:      pkg.Fset.Position(s.pos).Column,
					Analyzer: "suppression",
					Message:  "//" + suppressPrefix + " needs a reason: //" + suppressPrefix + " <why this is deterministic>",
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// resultPackages are the packages whose output feeds training labels,
// figures, or the service result cache: any nondeterminism here either
// poisons datasets or breaks cache byte-identity. Matched as path suffixes
// so the fixture packages under testdata/src/ resolve the same way.
var resultPackages = []string{
	"internal/mapper",
	"internal/gnn",
	"internal/labels",
	"internal/traingen",
	"internal/dfg",
	"internal/ilp",
	"internal/experiments",
	"internal/registry",
	"internal/service",
	"internal/engine",
	"internal/fault",
	"internal/store",
	"internal/cluster",
}

// inResultPackage reports whether pkgPath is one of the result-affecting
// packages (by path-segment-aligned suffix match).
func inResultPackage(pkgPath string) bool {
	for _, s := range resultPackages {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends in suffix on a "/" boundary.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
