package gnn

import (
	"math/rand"
	"testing"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/kernels"
)

// benchModel returns a model with fitted scales (the serving configuration)
// without paying for a training run: scales come from one fitScales pass
// over the benchmark's own attribute set.
func benchModel(b *testing.B) (*Model, *attr.Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	m := NewModel(rng, "bench")
	set := attr.Generate(kernels.MustByName("gemm"))
	m.fitScales([]Sample{{Set: set}})
	return m, set
}

// BenchmarkGNNInference measures the fused no-tape Predict — the serving
// path. scripts/bench-gnn.sh parses this and BenchmarkGNNInferenceTaped into
// BENCH_gnn.json and gates allocs/op in CI.
func BenchmarkGNNInference(b *testing.B) {
	m, set := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNInferenceTaped measures the taped reference forward pass the
// fused path replaced; the allocs/op ratio against BenchmarkGNNInference is
// the tentpole's headline number.
func BenchmarkGNNInferenceTaped(b *testing.B) {
	m, set := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.predictTaped(set)
	}
}

// BenchmarkGNNInferenceBatch8 measures the batched path: eight DFGs per
// PredictBatch call, reported per call.
func BenchmarkGNNInferenceBatch8(b *testing.B) {
	m, _ := benchModel(b)
	names := []string{"gemm", "atax", "bicg", "mvt", "gesummv", "syrk", "syr2k", "doitgen"}
	sets := make([]*attr.Set, len(names))
	for i, n := range names {
		sets[i] = attr.Generate(kernels.MustByName(n))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(sets); err != nil {
			b.Fatal(err)
		}
	}
}
