// Distributed-serving tests: the persistent result store behind the L1
// cache, multi-node consistent-hash routing (in-process nodes over real
// HTTP), the batch endpoint, and readiness. The acceptance contracts: a
// restarted daemon serves old results from disk byte-identically with zero
// mapper invocations, and a fleet computes each distinct request exactly
// once with byte-identical bodies everywhere.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/store"
)

// engineRuns sums mapper invocations across every engine of one node.
func engineRuns(t *testing.T, s *Server) int64 {
	t.Helper()
	snap := s.Metrics().Snapshot(time.Now(), 0, 0)
	var total int64
	for _, e := range snap.Engines {
		total += e.Count
	}
	return total
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRestartServesFromDiskZeroMapperRuns(t *testing.T) {
	dir := t.TempDir()
	body := `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":5}`

	s1 := testServer(t, Config{Store: openStore(t, dir)})
	first := postMap(t, s1.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("first request %s = %q, want miss", cacheHeader, got)
	}
	if st := s1.cfg.Store; st.Len() != 1 {
		t.Fatalf("store holds %d entries after one compute, want 1", st.Len())
	}

	// "Restart": a fresh server (empty L1, fresh metrics) over a reopened
	// store directory must serve the same request from disk — byte
	// identical, zero mapper invocations.
	s2 := testServer(t, Config{Store: openStore(t, dir)})
	second := postMap(t, s2.Handler(), body)
	if second.Code != http.StatusOK {
		t.Fatalf("post-restart request: %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get(cacheHeader); got != "store" {
		t.Fatalf("post-restart %s = %q, want store", cacheHeader, got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("post-restart body differs from the original compute")
	}
	if runs := engineRuns(t, s2); runs != 0 {
		t.Fatalf("restarted daemon ran the mapper %d times, want 0", runs)
	}

	// The store hit was promoted to L1: the next request skips the disk.
	third := postMap(t, s2.Handler(), body)
	if got := third.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("third request %s = %q, want hit (L1 promotion)", cacheHeader, got)
	}

	// /metrics reports both tiers.
	w := httptest.NewRecorder()
	s2.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Store == nil || snap.Store.Hits != 1 || snap.Store.Entries != 1 {
		t.Fatalf("store snapshot %+v, want hits=1 entries=1", snap.Store)
	}
	if snap.Cache.Bytes <= 0 || snap.Cache.Entries != 1 {
		t.Fatalf("cache gauges entries=%d bytes=%d, want 1 entry with bytes > 0", snap.Cache.Entries, snap.Cache.Bytes)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(10, 10)
	c.Add("a", []byte("aaaaaa")) // 6 bytes
	c.Add("b", []byte("bbbbbb")) // 12 total > 10: evict LRU "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte bound did not evict the LRU entry")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Len() != 1 || c.Bytes() != 6 {
		t.Fatalf("gauges = %d entries / %d bytes, want 1 / 6", c.Len(), c.Bytes())
	}

	// A single oversized body is still cached: serving it beats recomputing
	// it on every request.
	over := NewCache(10, 4)
	over.Add("x", []byte("xxxxxxxx"))
	if _, ok := over.Get("x"); !ok || over.Len() != 1 {
		t.Fatal("oversized singleton evicted")
	}
	over.Add("y", []byte("yy")) // displaces x: 10 bytes > 4, x is LRU
	if _, ok := over.Get("x"); ok {
		t.Fatal("oversized entry survived a displacing add")
	}
}

// TestChaosStoreReadFault: an injected disk-read failure is a forced miss —
// the daemon recomputes, serves byte-identical bytes, and never dies.
func TestChaosStoreReadFault(t *testing.T) {
	dir := t.TempDir()
	body := `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":9}`

	s1 := testServer(t, Config{Store: openStore(t, dir)})
	first := postMap(t, s1.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("seed request: %d", first.Code)
	}

	// Fresh server, empty L1: the lookup must go to the store, where the
	// fault fires and forces a recompute.
	s2 := testServer(t, Config{Store: openStore(t, dir)})
	armFaults(t, "store.read=error:1", 3)
	h := s2.Handler()
	under := postMap(t, h, body)
	if under.Code != http.StatusOK {
		t.Fatalf("request under store.read fault: %d: %s", under.Code, under.Body)
	}
	if !bytes.Equal(under.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("recomputed body differs — determinism broken by a read fault")
	}
	if runs := engineRuns(t, s2); runs != 1 {
		t.Fatalf("mapper ran %d times under a read fault, want 1 (forced miss)", runs)
	}
	snap := s2.Metrics().storeSnapshot()
	if snap.ReadErrors == 0 {
		t.Fatal("store read errors not counted")
	}
	alive(t, h)
}

// TestChaosStoreWriteFault: a write killed mid-entry costs persistence,
// never the response — and the torn file is dropped on the next restart.
func TestChaosStoreWriteFault(t *testing.T) {
	dir := t.TempDir()
	body := `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":13}`

	s := testServer(t, Config{Store: openStore(t, dir)})
	h := s.Handler()
	armFaults(t, "store.write=error:1", 5)
	under := postMap(t, h, body)
	if under.Code != http.StatusOK {
		t.Fatalf("request under store.write fault: %d: %s", under.Code, under.Body)
	}
	if snap := s.Metrics().storeSnapshot(); snap.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", snap.WriteErrors)
	}
	// L1 still has the body: the write failure is invisible to clients.
	again := postMap(t, h, body)
	if got := again.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("%s = %q after a write fault, want hit", cacheHeader, got)
	}
	alive(t, h)

	// The fault left a torn file under the final name (a dying writer's
	// worst case). Restart recovery must drop it and carry on.
	st := openStore(t, dir)
	if st.Len() != 0 || st.Dropped() != 1 {
		t.Fatalf("recovery census = %d entries / %d dropped, want 0 / 1", st.Len(), st.Dropped())
	}
}

func TestBatchMixedOutcomes(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()

	// Reference: the single-endpoint body for the same request.
	single := postMap(t, h, `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3}`)
	if single.Code != http.StatusOK {
		t.Fatalf("reference request: %d", single.Code)
	}

	batchBody := `{"items":[
		{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3},
		{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3},
		{"kernel":"gemm","arch":"no-such-arch"},
		{"kernel":"gemm","dfg":{"x":1},"arch":"cgra-4x4"}
	]}`
	post := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/map/batch", strings.NewReader(batchBody)))
		return w
	}
	w := post()
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", w.Code, w.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 || resp.OK != 2 || resp.Failed != 2 {
		t.Fatalf("batch outcome ok=%d failed=%d items=%d, want 2/2/4", resp.OK, resp.Failed, len(resp.Items))
	}
	// Item results arrive in request order; the 200s embed the exact
	// /v1/map document (minus its trailing newline).
	want := bytes.TrimSuffix(single.Body.Bytes(), []byte("\n"))
	if !bytes.Equal(resp.Items[0].Response, want) {
		t.Fatalf("batch item body differs from the single endpoint:\n%s\n%s", resp.Items[0].Response, want)
	}
	if !bytes.Equal(resp.Items[0].Response, resp.Items[1].Response) {
		t.Fatal("identical items answered differently")
	}
	if resp.Items[2].Status != http.StatusBadRequest || !strings.Contains(resp.Items[2].Error, "no-such-arch") {
		t.Fatalf("bad-arch item: %+v", resp.Items[2])
	}
	if resp.Items[3].Status != http.StatusBadRequest || !strings.Contains(resp.Items[3].Error, "exactly one") {
		t.Fatalf("kernel+dfg item: %+v", resp.Items[3])
	}

	// Identical batches answer byte-identically (second run is all cache
	// hits, but dispositions are headers-only, never body).
	if again := post(); !bytes.Equal(again.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("repeated batch body differs")
	}

	snap := s.Metrics().Snapshot(time.Now(), 0, 0)
	if snap.Batch == nil || snap.Batch.Requests != 2 || snap.Batch.Items != 8 || snap.Batch.FailedItems != 4 {
		t.Fatalf("batch counters %+v, want requests=2 items=8 failed=4", snap.Batch)
	}
}

func TestBatchValidation(t *testing.T) {
	s := testServer(t, Config{MaxBatchItems: 2})
	h := s.Handler()
	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/map/batch", strings.NewReader(body)))
		return w
	}
	if w := post(`{"items":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", w.Code)
	}
	item := `{"kernel":"gemm","arch":"cgra-4x4"}`
	if w := post(`{"items":[` + item + `,` + item + `,` + item + `]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d, want 400", w.Code)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/map/batch", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: %d, want 405", w.Code)
	}
}

// clusterNode is one in-process daemon reachable over real HTTP.
type clusterNode struct {
	srv *Server
	url string
}

// handlerSlot lets the HTTP listener exist before the Server that backs it
// (the Server's cluster config needs every listener URL first).
type handlerSlot struct {
	mu sync.RWMutex
	h  http.Handler
}

func (hs *handlerSlot) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hs.mu.RLock()
	h := hs.h
	hs.mu.RUnlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (hs *handlerSlot) set(h http.Handler) {
	hs.mu.Lock()
	hs.h = h
	hs.mu.Unlock()
}

// testCluster starts n nodes that all know the same peer list.
func testCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	slots := make([]*handlerSlot, n)
	urls := make([]string, n)
	for i := range slots {
		slots[i] = &handlerSlot{}
		hts := httptest.NewServer(slots[i])
		t.Cleanup(hts.Close)
		urls[i] = hts.URL
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cl, err := cluster.New(cluster.Config{Self: urls[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		s := testServer(t, Config{Workers: 2, Cluster: cl})
		slots[i].set(s.Handler())
		nodes[i] = &clusterNode{srv: s, url: urls[i]}
	}
	return nodes
}

// post sends a real HTTP mapping request to a node.
func (n *clusterNode) post(t *testing.T, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(n.url+"/v1/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestClusterComputesOnceFleetWide is the multi-node acceptance test: the
// same request against every node of a 3-node fleet is computed exactly
// once, everyone answers byte-identically, and the detour is visible only
// in headers and counters.
func TestClusterComputesOnceFleetWide(t *testing.T) {
	nodes := testCluster(t, 3)
	body := `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":11}`

	bodies := make([][]byte, len(nodes))
	vias := make([]string, len(nodes))
	for i, n := range nodes {
		resp, b := n.post(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: %d: %s", i, resp.StatusCode, b)
		}
		bodies[i] = b
		vias[i] = resp.Header.Get(clusterHeader)
		if vias[i] == "" {
			t.Fatalf("node %d: no %s header in cluster mode", i, clusterHeader)
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("node %d body differs from node 0", i)
		}
	}

	var total int64
	proxied := 0
	for i, n := range nodes {
		total += engineRuns(t, n.srv)
		if vias[i] == "proxied" {
			proxied++
		}
	}
	if total != 1 {
		t.Fatalf("fleet ran the mapper %d times for one distinct request, want exactly 1", total)
	}
	if proxied == 0 {
		t.Fatal("no node proxied; the request cannot have been routed")
	}

	// Every node now holds the result locally: repeat requests are L1 hits
	// with no further compute anywhere.
	for i, n := range nodes {
		resp, b := n.post(t, body)
		if got := resp.Header.Get(cacheHeader); got != "hit" {
			t.Fatalf("node %d repeat: %s = %q, want hit", i, cacheHeader, got)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("node %d repeat body differs", i)
		}
	}
	var after int64
	for _, n := range nodes {
		after += engineRuns(t, n.srv)
	}
	if after != 1 {
		t.Fatalf("repeat requests re-ran the mapper (%d total runs)", after)
	}
}

// TestClusterFallbackWhenOwnerUnreachable: keys owned by a dead peer are
// computed locally — labeled, counted, and byte-identical to what a
// single-node daemon produces.
func TestClusterFallbackWhenOwnerUnreachable(t *testing.T) {
	// A listener that is immediately closed: a realistic dead peer URL.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	slot := &handlerSlot{}
	live := httptest.NewServer(slot)
	t.Cleanup(live.Close)
	cl, err := cluster.New(cluster.Config{Self: live.URL, Peers: []string{live.URL, deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Workers: 2, Cluster: cl})
	slot.set(s.Handler())
	node := &clusterNode{srv: s, url: live.URL}

	solo := testServer(t, Config{Workers: 2})

	// Roughly half of all keys are owned by the dead peer; find one.
	fellBack := false
	for seed := 1; seed <= 24 && !fellBack; seed++ {
		body := fmt.Sprintf(`{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":%d}`, seed)
		resp, b := node.post(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, b)
		}
		if resp.Header.Get(clusterHeader) != "fallback-local" {
			continue
		}
		fellBack = true
		ref := postMap(t, solo.Handler(), body)
		if !bytes.Equal(b, ref.Body.Bytes()) {
			t.Fatalf("seed %d: fallback body differs from a single-node daemon", seed)
		}
	}
	if !fellBack {
		t.Fatal("no key routed to the dead peer across 24 seeds; ring broken?")
	}
	if _, fallbacks := s.Metrics().clusterCounters(); fallbacks == 0 {
		t.Fatal("fallbacks not counted")
	}
}

// TestChaosPeerRPCFault: an injected peer-RPC failure degrades a proxied
// request to local compute; once disarmed the result serves from the local
// cache byte-identically.
func TestChaosPeerRPCFault(t *testing.T) {
	nodes := testCluster(t, 2)
	armFaults(t, "peer.rpc=error:1", 7)

	var hit []byte
	var hitBody string
	for seed := 1; seed <= 24 && hit == nil; seed++ {
		body := fmt.Sprintf(`{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":%d}`, seed)
		resp, b := nodes[0].post(t, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d under peer.rpc fault: %d: %s", seed, resp.StatusCode, b)
		}
		if resp.Header.Get(clusterHeader) == "fallback-local" {
			hit, hitBody = b, body
		}
	}
	if hit == nil {
		t.Fatal("no request needed the peer across 24 seeds")
	}
	alive(t, nodes[0].srv.Handler())

	// The fallback result was cached locally, so the repeat request needs
	// no peer at all — it must hit L1 even with the fault still armed.
	resp, b := nodes[0].post(t, hitBody)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Fatalf("post-fault repeat: %s = %q, want hit", cacheHeader, got)
	}
	if !bytes.Equal(b, hit) {
		t.Fatal("post-fault repeat differs from the fallback body")
	}
}

func TestReadyzStoreAndPeers(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	slot := &handlerSlot{}
	live := httptest.NewServer(slot)
	t.Cleanup(live.Close)
	cl, err := cluster.New(cluster.Config{Self: live.URL, Peers: []string{live.URL, deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Store: openStore(t, t.TempDir()), Cluster: cl})
	slot.set(s.Handler())
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz: %d: %s", w.Code, w.Body)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Fatalf("ready=false: %+v", ready)
	}
	if ready.Store == nil || !ready.Store.Writable {
		t.Fatalf("store block %+v, want writable", ready.Store)
	}
	if len(ready.Models) == 0 {
		t.Fatal("no models listed")
	}
	if len(ready.Peers) != 2 {
		t.Fatalf("peers = %d rows, want 2", len(ready.Peers))
	}
	// A dead peer is reported unhealthy but does not cost readiness: the
	// fallback path keeps a lone survivor serving.
	for _, p := range ready.Peers {
		if p.URL == deadURL && p.Healthy {
			t.Fatal("dead peer reported healthy after a probe")
		}
		if p.URL == live.URL && (!p.Healthy || !p.Self) {
			t.Fatalf("self row wrong: %+v", p)
		}
	}
}
