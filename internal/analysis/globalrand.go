package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags calls to the package-level math/rand (and math/rand/v2)
// functions — rand.Intn, rand.Float64, rand.Shuffle, … — anywhere in the
// repo. Those draw from one process-global, mutex-guarded stream, so the
// value any task observes depends on how goroutines interleave; with the
// injected per-task *rand.Rand (seeded via parallel.DeriveSeed) each task's
// stream is a pure function of (base seed, task index) at any worker
// count. Constructors (rand.New, rand.NewSource, …) are exactly how the
// injected generators get built and are not flagged.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "call to a package-level math/rand function (shared global RNG stream)",
	Run:  runGlobalRand,
}

// randConstructors build private generators rather than draw from the
// global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc. — the injected form
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global RNG stream; use the injected per-task *rand.Rand (seed it with parallel.DeriveSeed)",
				path, fn.Name())
			return true
		})
	}
}
