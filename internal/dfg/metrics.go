package dfg

// Metrics summarizes the structural properties that predict mapping
// difficulty; lisa-dfg prints them and the experiments reference them when
// discussing which kernels are hard for which engine.
type Metrics struct {
	Nodes, Edges int
	MemOps       int
	CriticalPath int
	// Width is the largest ASAP level population — the peak spatial
	// parallelism the DFG offers.
	Width int
	// AvgFanout is edges / non-sink nodes.
	AvgFanout float64
	// MaxFanout is the largest out-degree (the B-node of the paper's
	// motivating example has 4).
	MaxFanout int
	// Density is edges / possible forward pairs — how entangled the DFG is.
	Density float64
	// SameLevelPairs counts the dummy edges label 2 operates on.
	SameLevelPairs int
}

// ComputeMetrics analyzes g.
func ComputeMetrics(g *Graph) Metrics {
	an := Analyze(g)
	m := Metrics{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		MemOps:       g.MemOpCount(),
		CriticalPath: an.CriticalPath,
	}
	for lvl := 0; lvl <= an.CriticalPath; lvl++ {
		if w := an.NodesAtLevel(lvl); w > m.Width {
			m.Width = w
		}
	}
	nonSink := 0
	for v := range g.Nodes {
		if d := g.OutDegree(v); d > 0 {
			nonSink++
			if d > m.MaxFanout {
				m.MaxFanout = d
			}
		}
	}
	if nonSink > 0 {
		m.AvgFanout = float64(g.NumEdges()) / float64(nonSink)
	}
	if n := g.NumNodes(); n > 1 {
		m.Density = float64(g.NumEdges()) / float64(n*(n-1)/2)
	}
	m.SameLevelPairs = len(an.SameLevelPairs())
	return m
}
